// Core-second blame accounting: every core-microsecond of the cluster's
// capacity (Σ_w cores_w × makespan) is attributed to exactly one blame
// category, derived purely from a SpanLog. The accounting is exact 64-bit
// integer arithmetic — no floating point touches a core-tick until a
// fraction is derived for display — so the identity
//
//     Σ_category core_ticks[category] == capacity
//
// holds bit-exactly and is machine-checked (identity_ok). Under the
// determinism contract the ledger is therefore bit-identical across
// replays of the same run.
//
// Taxonomy (one owner per core-tick, first match wins):
//   preempted      the worker slot was configured but not connected
//   recovery       a failed attempt occupied the core (all of its span)
//   dispatch-wait  manager serialization + control RTT before inputs moved
//   transfer-wait  input fetch (and library/env wait) on the worker
//   import         interpreter startup, (de)serialization, import cost
//   compute        user code + output write
//   idle           connected capacity no attempt occupied
//
// The output-retrieval phase occupies no core (the process has exited and
// the core is re-dispatchable while the result drains through the
// manager), so it appears in spans and traces but never in the ledger.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/span.h"
#include "util/units.h"

namespace hepvine::obs {

enum class Blame : std::uint8_t {
  kCompute = 0,
  kImport,
  kTransferWait,
  kDispatchWait,
  kRecovery,
  kIdle,
  kPreempted,
};

inline constexpr std::size_t kBlameCount = 7;

/// Stable display name ("compute", "transfer-wait", ...).
const char* to_string(Blame blame);

/// Core-ticks per blame category (indexed by Blame enum value).
using BlameVector = std::array<std::int64_t, kBlameCount>;

/// One worker slot's share of the accounting.
struct WorkerAttribution {
  std::int32_t worker = -1;
  std::uint32_t cores = 0;
  std::int64_t capacity = 0;  // cores × makespan, in core-ticks
  Tick alive = 0;             // connected time within [0, makespan]
  BlameVector ticks{};
};

/// Per-task-category rollup of the occupied (attempt-attributed) ticks.
struct TenantAttribution {
  std::int64_t attempts = 0;
  BlameVector ticks{};
};

struct AttributionLedger {
  Tick makespan = 0;
  std::int64_t capacity = 0;  // Σ_w cores_w × makespan
  BlameVector ticks{};        // cluster-wide totals
  std::vector<WorkerAttribution> workers;
  std::map<std::string, TenantAttribution> tenants;

  // Manager serial-loop occupancy, carried through for RunReport: the
  // ledger replaces the legacy ad-hoc measurement as the source of truth.
  Tick manager_busy_ticks = 0;
  std::uint64_t manager_ops = 0;
  double manager_busy_fraction = 0.0;

  /// Σ ticks over all categories (== capacity when the identity holds).
  [[nodiscard]] std::int64_t attributed() const {
    std::int64_t sum = 0;
    for (const std::int64_t t : ticks) sum += t;
    return sum;
  }
  /// capacity − attributed(); 0 when the accounting identity holds.
  [[nodiscard]] std::int64_t identity_error() const {
    return capacity - attributed();
  }
  /// The identity holds when the categories sum to capacity exactly AND
  /// no worker's idle residual went negative (negative idle means more
  /// concurrent attempts were charged to a worker than it has cores — a
  /// scheduler accounting bug the residual construction would otherwise
  /// silently absorb).
  [[nodiscard]] bool identity_ok() const {
    if (identity_error() != 0) return false;
    for (const WorkerAttribution& w : workers) {
      if (w.ticks[static_cast<std::size_t>(Blame::kIdle)] < 0) return false;
    }
    return true;
  }

  /// Fraction of capacity in `blame` (display only; 0 when capacity is 0).
  [[nodiscard]] double fraction(Blame blame) const {
    if (capacity == 0) return 0.0;
    return static_cast<double>(ticks[static_cast<std::size_t>(blame)]) /
           static_cast<double>(capacity);
  }
};

/// Build the ledger from a recorded run. Requires set_worker_cores,
/// set_run and the worker/attempt records to have been filled in; a log
/// with no workers or zero makespan yields an empty (capacity 0) ledger.
[[nodiscard]] AttributionLedger attribute(const SpanLog& log);

}  // namespace hepvine::obs
