// Critical-path extraction: which dependency chain bounded the makespan,
// and what each link on it was waiting for.
//
// Walks the completed task graph recorded in a SpanLog backwards from the
// last task to finish, at each step following the predecessor whose
// completion gated this task the longest. The realized length of the
// resulting chain is a hard lower bound on the makespan of any schedule
// of this DAG on this hardware — no worker count can beat it — and each
// link's span decomposes into the same blame categories as the cluster
// ledger, yielding Amdahl-style bounds per category: "even infinite
// workers save ≤ X because the critical path is Y% transfer-wait."
//
// All arithmetic is exact integer ticks; the extraction is deterministic
// (ties broken by smallest task id) so output is bit-identical across
// replays.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/attribution.h"
#include "obs/span.h"
#include "util/units.h"

namespace hepvine::obs {

/// One link of the critical chain: task `task` could not start before
/// `gate` (its slowest predecessor's finish, or its own first ready time
/// for a root) and finished at `finish`. `ticks` decomposes
/// [gate, finish] into blame categories.
struct PathNode {
  std::int64_t task = -1;
  std::uint32_t attempt = 0;
  std::int32_t worker = -1;
  Tick gate = -1;
  Tick finish = -1;
  BlameVector ticks{};
};

struct CriticalPath {
  std::vector<PathNode> nodes;  // root first, head (last finisher) last
  Tick start = 0;               // gate of the root node
  Tick finish = 0;              // finish of the head node
  Tick makespan = 0;
  BlameVector ticks{};  // Σ over nodes; sums to realized_length()

  [[nodiscard]] Tick realized_length() const { return finish - start; }

  /// Fraction of the realized path in `blame` (display only).
  [[nodiscard]] double category_share(Blame blame) const {
    const Tick len = realized_length();
    if (len <= 0) return 0.0;
    return static_cast<double>(
               ticks[static_cast<std::size_t>(blame)]) /
           static_cast<double>(len);
  }

  /// Ceiling on speedup from parallelism alone: infinite workers cannot
  /// finish before the critical path does.
  [[nodiscard]] double overall_speedup_bound() const {
    const Tick len = realized_length();
    if (len <= 0 || makespan <= 0) return 1.0;
    return static_cast<double>(makespan) / static_cast<double>(len);
  }

  /// Amdahl-style ceiling if `blame` were eliminated from the path (e.g.
  /// perfect data placement zeroes transfer-wait): the path cannot shrink
  /// below realized_length − ticks[blame]. Returns 0 when the whole path
  /// is `blame` (the bound is unbounded).
  [[nodiscard]] double speedup_bound_without(Blame blame) const {
    if (makespan <= 0) return 1.0;
    const Tick rest =
        realized_length() - ticks[static_cast<std::size_t>(blame)];
    if (rest <= 0) return 0.0;
    return static_cast<double>(makespan) / static_cast<double>(rest);
  }
};

/// Extract the critical chain from a recorded run. Uses the last
/// successful attempt of each task; a log with no successful attempts
/// yields an empty path.
[[nodiscard]] CriticalPath extract_critical_path(const SpanLog& log);

}  // namespace hepvine::obs
