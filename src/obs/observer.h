// RunObservation: the per-run bundle of observability sinks shared by all
// scheduler backends — transactions log, stats registry + performance log,
// and Chrome-trace builder — plus the ObsConfig knob block that rides in
// exec::RunOptions.
//
// A disabled observation (the default) costs one branch per emit site; an
// enabled one records in memory (bounded) and optionally streams to the
// configured paths when the run finalizes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "obs/chrome_trace.h"
#include "obs/perf_log.h"
#include "obs/stats_registry.h"
#include "obs/txn_log.h"
#include "util/units.h"

namespace hepvine::obs {

using util::Tick;

struct ObsConfig {
  /// Master switch; off = zero-allocation no-op observation.
  bool enabled = false;
  /// Individual sinks (only consulted when `enabled`).
  bool txn_log = true;
  bool perf_log = true;
  bool chrome_trace = true;
  /// Emit per-attempt lifecycle spans (obs/span.h) into the Chrome trace
  /// as nested B/E events. Off by default so existing traces stay
  /// byte-stable; the SpanLog itself is always recorded in RunReport.
  bool trace_lifecycle_spans = false;
  /// Max transaction lines retained in memory; older lines rotate out
  /// (they remain in `txn_path` when streaming). Default fits ~10^6-task
  /// runs' recent history without unbounded growth.
  std::size_t txn_ring_capacity = 1 << 20;
  /// Perf snapshot cadence (same default as RunOptions::cache_sample_interval).
  Tick perf_sample_interval = 5 * util::kSec;
  /// Optional output paths; empty = in-memory capture only.
  std::string txn_path;
  std::string perf_path;
  std::string trace_path;
};

class RunObservation {
 public:
  explicit RunObservation(const ObsConfig& config);

  [[nodiscard]] const ObsConfig& config() const noexcept { return config_; }
  [[nodiscard]] bool enabled() const noexcept { return config_.enabled; }
  [[nodiscard]] bool txn_enabled() const noexcept {
    return config_.enabled && config_.txn_log;
  }
  [[nodiscard]] bool perf_enabled() const noexcept {
    return config_.enabled && config_.perf_log;
  }
  [[nodiscard]] bool trace_enabled() const noexcept {
    return config_.enabled && config_.chrome_trace;
  }

  [[nodiscard]] TxnLog& txn() noexcept { return *txn_; }
  [[nodiscard]] const TxnLog& txn() const noexcept { return *txn_; }
  [[nodiscard]] StatsRegistry& stats() noexcept { return stats_; }
  [[nodiscard]] const StatsRegistry& stats() const noexcept { return stats_; }
  [[nodiscard]] PerfLog& perf() noexcept { return perf_; }
  [[nodiscard]] const PerfLog& perf() const noexcept { return perf_; }
  [[nodiscard]] ChromeTraceBuilder& trace() noexcept { return trace_; }
  [[nodiscard]] const ChromeTraceBuilder& trace() const noexcept {
    return trace_;
  }

  /// End-of-run bookkeeping: take a final perf sample at `now`, detach
  /// gauges (their callbacks reference subsystems the report outlives),
  /// and write any configured output files.
  void finalize(Tick now);

 private:
  ObsConfig config_;
  std::unique_ptr<TxnLog> txn_;
  StatsRegistry stats_;
  PerfLog perf_;
  ChromeTraceBuilder trace_;
  bool finalized_ = false;
};

/// Shared across backends: create an observation for `config` (never null;
/// disabled configs produce a cheap no-op observation).
[[nodiscard]] std::shared_ptr<RunObservation> make_observation(
    const ObsConfig& config);

}  // namespace hepvine::obs
