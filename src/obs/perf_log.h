// Performance log: periodic snapshots of manager-side metrics, the
// analogue of TaskVine's `performance` log.
//
// The scheduler arms an Engine timer at a fixed cadence; every firing
// samples the whole StatsRegistry (queue depths, workers connected/busy,
// bytes moved, dispatch-loop busy fraction, event-engine stats) into one
// row. The text rendering is the TaskVine shape: a `# time col...` header
// line followed by one space-separated row per sample, trivially
// consumable by awk/pandas.
#pragma once

#include <string>
#include <vector>

#include "obs/stats_registry.h"
#include "util/units.h"

namespace hepvine::obs {

using util::Tick;

class PerfLog {
 public:
  struct Row {
    Tick t = 0;
    std::vector<double> values;  // registry order at sample time
  };

  /// Freeze the column set from the registry's current contents. Metrics
  /// registered later are ignored (columns must be stable across rows).
  void bind(const StatsRegistry& registry) { columns_ = registry.names(); }

  /// Sample every bound column into a new row at time `t`.
  void sample(Tick t, const StatsRegistry& registry);

  [[nodiscard]] const std::vector<std::string>& columns() const noexcept {
    return columns_;
  }
  [[nodiscard]] const std::vector<Row>& rows() const noexcept { return rows_; }
  [[nodiscard]] bool empty() const noexcept { return rows_.empty(); }
  [[nodiscard]] const Row& last() const { return rows_.back(); }

  /// Value of `column` in the final row (0 if absent / no rows).
  [[nodiscard]] double final_value(const std::string& column) const;

  /// `# time_us col...` header plus one row per sample.
  [[nodiscard]] std::string to_text() const;

  /// Write to_text() to `path`; returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

}  // namespace hepvine::obs
