#include "obs/profile_report.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "obs/chrome_trace.h"
#include "util/units.h"

namespace hepvine::obs {

namespace {

constexpr Blame kAllBlames[] = {
    Blame::kCompute,     Blame::kImport,   Blame::kTransferWait,
    Blame::kDispatchWait, Blame::kRecovery, Blame::kIdle,
    Blame::kPreempted,
};

constexpr std::size_t idx(Blame blame) {
  return static_cast<std::size_t>(blame);
}

double core_seconds(std::int64_t core_ticks) {
  return static_cast<double>(core_ticks) / static_cast<double>(util::kSec);
}

void append_blame_json(std::string& out, const BlameVector& ticks) {
  char buf[96];
  out += '{';
  bool first = true;
  for (const Blame b : kAllBlames) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%" PRId64,
                  first ? "" : ",", to_string(b), ticks[idx(b)]);
    out += buf;
    first = false;
  }
  out += '}';
}

}  // namespace

ProfileReport build_profile(const SpanLog& log) {
  ProfileReport profile;
  profile.ledger = attribute(log);
  profile.path = extract_critical_path(log);
  return profile;
}

std::string profile_text(const SpanLog& log, const ProfileReport& profile,
                         std::size_t top_k) {
  const AttributionLedger& ledger = profile.ledger;
  const CriticalPath& path = profile.path;
  std::string out;
  char buf[256];

  std::snprintf(buf, sizeof(buf), "== vine_profile: %s ==\n",
                log.scheduler().empty() ? "(unknown scheduler)"
                                        : log.scheduler().c_str());
  out += buf;
  std::snprintf(buf, sizeof(buf), "outcome:   %s\n",
                log.success() ? "success" : "FAILURE");
  out += buf;
  std::snprintf(buf, sizeof(buf), "makespan:  %s (%" PRId64 " us)\n",
                util::format_duration(log.makespan()).c_str(),
                log.makespan());
  out += buf;
  std::uint64_t total_cores = 0;
  for (const std::uint32_t c : log.worker_cores()) total_cores += c;
  std::snprintf(buf, sizeof(buf),
                "workers:   %zu slots, %" PRIu64
                " cores, %.3f core-s capacity\n",
                log.worker_cores().size(), total_cores,
                core_seconds(ledger.capacity));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "manager:   busy %.1f%% of makespan (%" PRIu64 " ops)\n",
                100.0 * ledger.manager_busy_fraction, ledger.manager_ops);
  out += buf;
  std::size_t failed = 0;
  for (const AttemptSpan& a : log.attempts()) failed += a.failed ? 1 : 0;
  std::snprintf(buf, sizeof(buf), "attempts:  %zu recorded (%zu failed)\n",
                log.attempts().size(), failed);
  out += buf;
  if (!log.flows().empty()) {
    std::uint64_t carried = 0;
    for (const FlowSpan& f : log.flows()) carried += f.carried;
    std::snprintf(buf, sizeof(buf), "flows:     %zu wire flows, %s moved\n",
                  log.flows().size(), util::format_bytes(carried).c_str());
    out += buf;
  }
  if (!log.cache_events().empty()) {
    std::snprintf(buf, sizeof(buf), "cache:     %zu replica drops\n",
                  log.cache_events().size());
    out += buf;
  }

  const double attributed_pct =
      ledger.capacity > 0
          ? 100.0 * static_cast<double>(ledger.attributed()) /
                static_cast<double>(ledger.capacity)
          : 0.0;
  std::snprintf(buf, sizeof(buf),
                "\n-- core-second blame (identity %s, %.3f%% of capacity "
                "attributed) --\n",
                ledger.identity_ok() ? "OK" : "VIOLATED", attributed_pct);
  out += buf;
  for (const Blame b : kAllBlames) {
    std::snprintf(buf, sizeof(buf), "  %-14s %14.3f core-s  %6.2f%%\n",
                  to_string(b), core_seconds(ledger.ticks[idx(b)]),
                  100.0 * ledger.fraction(b));
    out += buf;
  }

  if (!ledger.tenants.empty()) {
    out += "\n-- per-tenant (task category) --\n";
    for (const auto& [category, tenant] : ledger.tenants) {
      std::int64_t occupied = 0;
      for (const std::int64_t t : tenant.ticks) occupied += t;
      std::snprintf(buf, sizeof(buf),
                    "  %-18s attempts=%" PRId64
                    "  occupied=%.3f core-s  compute=%.1f%% "
                    "transfer=%.1f%% dispatch=%.1f%% import=%.1f%% "
                    "recovery=%.1f%%\n",
                    category.empty() ? "(uncategorized)" : category.c_str(),
                    tenant.attempts, core_seconds(occupied),
                    occupied > 0 ? 100.0 *
                                       static_cast<double>(
                                           tenant.ticks[idx(Blame::kCompute)]) /
                                       static_cast<double>(occupied)
                                 : 0.0,
                    occupied > 0
                        ? 100.0 *
                              static_cast<double>(
                                  tenant.ticks[idx(Blame::kTransferWait)]) /
                              static_cast<double>(occupied)
                        : 0.0,
                    occupied > 0
                        ? 100.0 *
                              static_cast<double>(
                                  tenant.ticks[idx(Blame::kDispatchWait)]) /
                              static_cast<double>(occupied)
                        : 0.0,
                    occupied > 0 ? 100.0 *
                                       static_cast<double>(
                                           tenant.ticks[idx(Blame::kImport)]) /
                                       static_cast<double>(occupied)
                                 : 0.0,
                    occupied > 0
                        ? 100.0 *
                              static_cast<double>(
                                  tenant.ticks[idx(Blame::kRecovery)]) /
                              static_cast<double>(occupied)
                        : 0.0);
      out += buf;
    }
  }

  if (!path.nodes.empty()) {
    std::snprintf(buf, sizeof(buf),
                  "\n-- critical path (%zu tasks, %s realized, %.1f%% of "
                  "makespan) --\n",
                  path.nodes.size(),
                  util::format_duration(path.realized_length()).c_str(),
                  log.makespan() > 0
                      ? 100.0 * static_cast<double>(path.realized_length()) /
                            static_cast<double>(log.makespan())
                      : 0.0);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "  speedup bound (infinite workers): %.2fx\n",
                  path.overall_speedup_bound());
    out += buf;
    for (const Blame b : kAllBlames) {
      if (b == Blame::kIdle || b == Blame::kPreempted) continue;
      if (path.ticks[idx(b)] == 0) continue;
      const double bound = path.speedup_bound_without(b);
      if (bound > 0) {
        std::snprintf(
            buf, sizeof(buf),
            "  path is %.1f%% %s; eliminating it bounds speedup at %.2fx\n",
            100.0 * path.category_share(b), to_string(b), bound);
      } else {
        std::snprintf(buf, sizeof(buf),
                      "  path is %.1f%% %s; eliminating it removes the "
                      "critical path entirely\n",
                      100.0 * path.category_share(b), to_string(b));
      }
      out += buf;
    }
    if (top_k > 0) {
      out += "  top links (head first):\n";
      const std::size_t n = std::min(top_k, path.nodes.size());
      for (std::size_t i = 0; i < n; ++i) {
        const PathNode& node = path.nodes[path.nodes.size() - 1 - i];
        std::snprintf(buf, sizeof(buf),
                      "    task %" PRId64
                      " attempt %u worker %d  span=%s  compute=%.1f%% "
                      "transfer=%.1f%% dispatch=%.1f%%\n",
                      node.task, node.attempt, node.worker,
                      util::format_duration(node.finish - node.gate).c_str(),
                      node.finish > node.gate
                          ? 100.0 *
                                static_cast<double>(
                                    node.ticks[idx(Blame::kCompute)]) /
                                static_cast<double>(node.finish - node.gate)
                          : 0.0,
                      node.finish > node.gate
                          ? 100.0 *
                                static_cast<double>(
                                    node.ticks[idx(Blame::kTransferWait)]) /
                                static_cast<double>(node.finish - node.gate)
                          : 0.0,
                      node.finish > node.gate
                          ? 100.0 *
                                static_cast<double>(
                                    node.ticks[idx(Blame::kDispatchWait)]) /
                                static_cast<double>(node.finish - node.gate)
                          : 0.0);
        out += buf;
      }
    }
  }

  return out;
}

std::string profile_json(const SpanLog& log, const ProfileReport& profile) {
  const AttributionLedger& ledger = profile.ledger;
  const CriticalPath& path = profile.path;
  std::string out;
  out.reserve(2048 + ledger.workers.size() * 160);
  char buf[320];

  out += "{";
  std::snprintf(buf, sizeof(buf), "\"scheduler\":\"%s\",\"success\":%s,",
                ChromeTraceBuilder::escape(log.scheduler()).c_str(),
                log.success() ? "true" : "false");
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "\"makespan_us\":%" PRId64 ",\"capacity_core_us\":%" PRId64
                ",\"identity_ok\":%s,\"identity_error_core_us\":%" PRId64
                ",",
                log.makespan(), ledger.capacity,
                ledger.identity_ok() ? "true" : "false",
                ledger.identity_error());
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "\"manager\":{\"busy_us\":%" PRId64 ",\"ops\":%" PRIu64
                ",\"busy_fraction\":%.6f},",
                ledger.manager_busy_ticks, ledger.manager_ops,
                ledger.manager_busy_fraction);
  out += buf;

  out += "\"blame_core_us\":";
  append_blame_json(out, ledger.ticks);
  out += ",";

  out += "\"workers\":[";
  for (std::size_t w = 0; w < ledger.workers.size(); ++w) {
    const WorkerAttribution& wa = ledger.workers[w];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"worker\":%d,\"cores\":%u,\"alive_us\":%" PRId64
                  ",\"ticks\":",
                  w > 0 ? "," : "", wa.worker, wa.cores, wa.alive);
    out += buf;
    append_blame_json(out, wa.ticks);
    out += "}";
  }
  out += "],";

  out += "\"tenants\":{";
  bool first_tenant = true;
  for (const auto& [category, tenant] : ledger.tenants) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\":{\"attempts\":%" PRId64
                                    ",\"ticks\":",
                  first_tenant ? "" : ",",
                  ChromeTraceBuilder::escape(category).c_str(),
                  tenant.attempts);
    out += buf;
    append_blame_json(out, tenant.ticks);
    out += "}";
    first_tenant = false;
  }
  out += "},";

  out += "\"critical_path\":{";
  std::snprintf(buf, sizeof(buf),
                "\"tasks\":%zu,\"start_us\":%" PRId64
                ",\"finish_us\":%" PRId64 ",\"length_us\":%" PRId64
                ",\"speedup_bound\":%.6f,\"blame_core_us\":",
                path.nodes.size(), path.start, path.finish,
                path.realized_length(), path.overall_speedup_bound());
  out += buf;
  append_blame_json(out, path.ticks);
  out += ",\"nodes\":[";
  for (std::size_t i = 0; i < path.nodes.size(); ++i) {
    const PathNode& node = path.nodes[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"task\":%" PRId64
                  ",\"attempt\":%u,\"worker\":%d,\"gate_us\":%" PRId64
                  ",\"finish_us\":%" PRId64 ",\"ticks\":",
                  i > 0 ? "," : "", node.task, node.attempt, node.worker,
                  node.gate, node.finish);
    out += buf;
    append_blame_json(out, node.ticks);
    out += "}";
  }
  out += "]}}";
  out += "\n";
  return out;
}

}  // namespace hepvine::obs
