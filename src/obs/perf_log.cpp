#include "obs/perf_log.h"

#include <cinttypes>
#include <cstdio>

namespace hepvine::obs {

void PerfLog::sample(Tick t, const StatsRegistry& registry) {
  Row row;
  row.t = t;
  row.values = registry.sample();
  row.values.resize(columns_.size(), 0.0);  // registry may have grown
  rows_.push_back(std::move(row));
}

double PerfLog::final_value(const std::string& column) const {
  if (rows_.empty()) return 0.0;
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == column) return rows_.back().values[i];
  }
  return 0.0;
}

std::string PerfLog::to_text() const {
  std::string out = "# time_us";
  for (const auto& c : columns_) {
    out += ' ';
    out += c;
  }
  out += '\n';
  char buf[64];
  for (const auto& row : rows_) {
    std::snprintf(buf, sizeof(buf), "%" PRId64, row.t);
    out += buf;
    for (double v : row.values) {
      // Integers (the common case) print exactly; fractions keep 6 digits.
      if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
        std::snprintf(buf, sizeof(buf), " %" PRId64,
                      static_cast<std::int64_t>(v));
      } else {
        std::snprintf(buf, sizeof(buf), " %.6f", v);
      }
      out += buf;
    }
    out += '\n';
  }
  return out;
}

bool PerfLog::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string text = to_text();
  const bool ok =
      std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  return ok;
}

}  // namespace hepvine::obs
