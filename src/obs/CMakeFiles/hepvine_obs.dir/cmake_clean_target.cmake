file(REMOVE_RECURSE
  "libhepvine_obs.a"
)
