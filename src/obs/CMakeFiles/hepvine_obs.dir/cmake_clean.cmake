file(REMOVE_RECURSE
  "CMakeFiles/hepvine_obs.dir/attribution.cpp.o"
  "CMakeFiles/hepvine_obs.dir/attribution.cpp.o.d"
  "CMakeFiles/hepvine_obs.dir/chrome_trace.cpp.o"
  "CMakeFiles/hepvine_obs.dir/chrome_trace.cpp.o.d"
  "CMakeFiles/hepvine_obs.dir/critical_path.cpp.o"
  "CMakeFiles/hepvine_obs.dir/critical_path.cpp.o.d"
  "CMakeFiles/hepvine_obs.dir/observer.cpp.o"
  "CMakeFiles/hepvine_obs.dir/observer.cpp.o.d"
  "CMakeFiles/hepvine_obs.dir/perf_log.cpp.o"
  "CMakeFiles/hepvine_obs.dir/perf_log.cpp.o.d"
  "CMakeFiles/hepvine_obs.dir/profile_report.cpp.o"
  "CMakeFiles/hepvine_obs.dir/profile_report.cpp.o.d"
  "CMakeFiles/hepvine_obs.dir/span.cpp.o"
  "CMakeFiles/hepvine_obs.dir/span.cpp.o.d"
  "CMakeFiles/hepvine_obs.dir/stats_registry.cpp.o"
  "CMakeFiles/hepvine_obs.dir/stats_registry.cpp.o.d"
  "CMakeFiles/hepvine_obs.dir/txn_log.cpp.o"
  "CMakeFiles/hepvine_obs.dir/txn_log.cpp.o.d"
  "CMakeFiles/hepvine_obs.dir/txn_query.cpp.o"
  "CMakeFiles/hepvine_obs.dir/txn_query.cpp.o.d"
  "libhepvine_obs.a"
  "libhepvine_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hepvine_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
