
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/obs/attribution.cpp" "src/obs/CMakeFiles/hepvine_obs.dir/attribution.cpp.o" "gcc" "src/obs/CMakeFiles/hepvine_obs.dir/attribution.cpp.o.d"
  "/root/repo/src/obs/chrome_trace.cpp" "src/obs/CMakeFiles/hepvine_obs.dir/chrome_trace.cpp.o" "gcc" "src/obs/CMakeFiles/hepvine_obs.dir/chrome_trace.cpp.o.d"
  "/root/repo/src/obs/critical_path.cpp" "src/obs/CMakeFiles/hepvine_obs.dir/critical_path.cpp.o" "gcc" "src/obs/CMakeFiles/hepvine_obs.dir/critical_path.cpp.o.d"
  "/root/repo/src/obs/observer.cpp" "src/obs/CMakeFiles/hepvine_obs.dir/observer.cpp.o" "gcc" "src/obs/CMakeFiles/hepvine_obs.dir/observer.cpp.o.d"
  "/root/repo/src/obs/perf_log.cpp" "src/obs/CMakeFiles/hepvine_obs.dir/perf_log.cpp.o" "gcc" "src/obs/CMakeFiles/hepvine_obs.dir/perf_log.cpp.o.d"
  "/root/repo/src/obs/profile_report.cpp" "src/obs/CMakeFiles/hepvine_obs.dir/profile_report.cpp.o" "gcc" "src/obs/CMakeFiles/hepvine_obs.dir/profile_report.cpp.o.d"
  "/root/repo/src/obs/span.cpp" "src/obs/CMakeFiles/hepvine_obs.dir/span.cpp.o" "gcc" "src/obs/CMakeFiles/hepvine_obs.dir/span.cpp.o.d"
  "/root/repo/src/obs/stats_registry.cpp" "src/obs/CMakeFiles/hepvine_obs.dir/stats_registry.cpp.o" "gcc" "src/obs/CMakeFiles/hepvine_obs.dir/stats_registry.cpp.o.d"
  "/root/repo/src/obs/txn_log.cpp" "src/obs/CMakeFiles/hepvine_obs.dir/txn_log.cpp.o" "gcc" "src/obs/CMakeFiles/hepvine_obs.dir/txn_log.cpp.o.d"
  "/root/repo/src/obs/txn_query.cpp" "src/obs/CMakeFiles/hepvine_obs.dir/txn_query.cpp.o" "gcc" "src/obs/CMakeFiles/hepvine_obs.dir/txn_query.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/util/CMakeFiles/hepvine_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
