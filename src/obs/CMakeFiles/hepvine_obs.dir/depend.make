# Empty dependencies file for hepvine_obs.
# This may be replaced when dependencies are built.
