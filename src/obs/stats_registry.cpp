#include "obs/stats_registry.h"

namespace hepvine::obs {

std::uint64_t* StatsRegistry::counter(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end()) return &entries_[it->second]->count;
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->is_counter = true;
  entries_.push_back(std::move(entry));
  index_.emplace(name, entries_.size() - 1);
  return &entries_.back()->count;
}

void StatsRegistry::gauge(const std::string& name, GaugeFn fn) {
  auto it = index_.find(name);
  if (it != index_.end()) {
    Entry& e = *entries_[it->second];
    e.fn = std::move(fn);
    e.detached = false;
    return;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->fn = std::move(fn);
  entries_.push_back(std::move(entry));
  index_.emplace(name, entries_.size() - 1);
}

std::vector<std::string> StatsRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e->name);
  return out;
}

double StatsRegistry::read(const Entry& e) const {
  if (e.is_counter) return static_cast<double>(e.count);
  if (e.detached || !e.fn) return e.last;
  return e.fn();
}

std::vector<double> StatsRegistry::sample() const {
  std::vector<double> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(read(*e));
  return out;
}

double StatsRegistry::value(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? 0.0 : read(*entries_[it->second]);
}

void StatsRegistry::detach_gauges() {
  for (auto& e : entries_) {
    if (!e->is_counter) {
      e->last = read(*e);
      e->detached = true;
      e->fn = nullptr;
    }
  }
}

}  // namespace hepvine::obs
