#include "obs/critical_path.h"

#include <algorithm>
#include <map>

namespace hepvine::obs {

namespace {

constexpr std::size_t idx(Blame blame) {
  return static_cast<std::size_t>(blame);
}

struct TaskRealization {
  const AttemptSpan* final_attempt = nullptr;  // last successful attempt
  Tick first_ready = -1;  // earliest ready_at over all attempts
  bool had_failure = false;
};

}  // namespace

CriticalPath extract_critical_path(const SpanLog& log) {
  CriticalPath path;
  path.makespan = log.makespan();

  // Realize each task: its finish time is the exec_end of its last
  // successful attempt (ties on equal exec_end keep the later record,
  // which is the higher attempt number in emission order).
  std::map<std::int64_t, TaskRealization> tasks;
  for (const AttemptSpan& a : log.attempts()) {
    TaskRealization& tr = tasks[a.task];
    if (tr.first_ready < 0 || (a.ready_at >= 0 && a.ready_at < tr.first_ready)) {
      tr.first_ready = a.ready_at;
    }
    if (a.failed) {
      tr.had_failure = true;
    } else if (tr.final_attempt == nullptr ||
               a.exec_end_at >= tr.final_attempt->exec_end_at) {
      tr.final_attempt = &a;
    }
  }

  // Head of the chain: the task that finished last (smallest id on ties —
  // std::map iteration order makes the first strict maximum win).
  std::int64_t head = -1;
  Tick head_finish = -1;
  for (const auto& [task, tr] : tasks) {
    if (tr.final_attempt == nullptr) continue;
    if (tr.final_attempt->exec_end_at > head_finish) {
      head = task;
      head_finish = tr.final_attempt->exec_end_at;
    }
  }
  if (head < 0) return path;

  // Walk backwards: each step follows the predecessor with the latest
  // finish (smallest id on ties). Loop guard: each step strictly moves to
  // a task that finished no later and has a distinct id; bounded by the
  // task count.
  std::vector<PathNode> reversed;
  std::int64_t current = head;
  const auto& deps = log.deps();
  while (reversed.size() <= tasks.size()) {
    const TaskRealization& tr = tasks.at(current);
    const AttemptSpan& a = *tr.final_attempt;

    std::int64_t pred = -1;
    Tick gate = -1;
    const auto dit = deps.find(current);
    if (dit != deps.end()) {
      for (const std::int64_t d : dit->second) {
        const auto pit = tasks.find(d);
        if (pit == tasks.end() || pit->second.final_attempt == nullptr) {
          continue;
        }
        const Tick f = pit->second.final_attempt->exec_end_at;
        if (f > gate || (f == gate && d < pred)) {
          pred = d;
          gate = f;
        }
      }
    }
    if (pred < 0) gate = tr.first_ready >= 0 ? tr.first_ready : a.ready_at;

    PathNode node;
    node.task = current;
    node.attempt = a.attempt;
    node.worker = a.worker;
    node.finish = a.exec_end_at;
    node.gate = std::min(gate, node.finish);

    // Decompose [gate, finish] with monotone clamping, mirroring the
    // ledger's per-attempt segments. The gap between the gate and this
    // attempt becoming ready is recovery when earlier attempts failed
    // (requeue/backoff), otherwise manager pipeline latency
    // (dispatch-wait: the predecessor's result was still being ingested).
    const Tick lo = node.gate;
    const Tick hi = node.finish;
    auto clamp = [lo, hi](Tick t, Tick floor) {
      return std::max(floor, std::min(t < 0 ? floor : t, hi));
    };
    const Tick ready = clamp(a.ready_at, lo);
    const Tick staged = clamp(a.staged_at, clamp(a.dispatched_at, ready));
    const Tick exec = clamp(a.exec_at, staged);
    const Tick compute = clamp(a.compute_at, exec);
    node.ticks[idx(tr.had_failure ? Blame::kRecovery
                                  : Blame::kDispatchWait)] += ready - lo;
    node.ticks[idx(Blame::kDispatchWait)] += staged - ready;
    node.ticks[idx(Blame::kTransferWait)] += exec - staged;
    node.ticks[idx(Blame::kImport)] += compute - exec;
    node.ticks[idx(Blame::kCompute)] += hi - compute;
    reversed.push_back(std::move(node));

    if (pred < 0) break;
    current = pred;
  }

  path.nodes.assign(reversed.rbegin(), reversed.rend());
  path.start = path.nodes.front().gate;
  path.finish = path.nodes.back().finish;
  for (const PathNode& n : path.nodes) {
    for (std::size_t c = 0; c < kBlameCount; ++c) path.ticks[c] += n.ticks[c];
  }
  return path;
}

}  // namespace hepvine::obs
