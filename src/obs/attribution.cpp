#include "obs/attribution.h"

#include <algorithm>

namespace hepvine::obs {

namespace {

constexpr std::size_t idx(Blame blame) {
  return static_cast<std::size_t>(blame);
}

Tick clamp_tick(Tick t, Tick lo, Tick hi) {
  return std::max(lo, std::min(t, hi));
}

}  // namespace

const char* to_string(Blame blame) {
  switch (blame) {
    case Blame::kCompute:
      return "compute";
    case Blame::kImport:
      return "import";
    case Blame::kTransferWait:
      return "transfer-wait";
    case Blame::kDispatchWait:
      return "dispatch-wait";
    case Blame::kRecovery:
      return "recovery";
    case Blame::kIdle:
      return "idle";
    case Blame::kPreempted:
      return "preempted";
  }
  return "unknown";
}

AttributionLedger attribute(const SpanLog& log) {
  AttributionLedger ledger;
  ledger.makespan = log.makespan();
  ledger.manager_busy_ticks = log.manager_busy_ticks();
  ledger.manager_ops = log.manager_ops();
  if (ledger.makespan > 0) {
    ledger.manager_busy_fraction =
        std::min(1.0, static_cast<double>(ledger.manager_busy_ticks) /
                          static_cast<double>(ledger.makespan));
  }

  const auto& cores = log.worker_cores();
  if (cores.empty() || ledger.makespan <= 0) return ledger;
  const Tick makespan = ledger.makespan;

  ledger.workers.resize(cores.size());
  for (std::size_t w = 0; w < cores.size(); ++w) {
    WorkerAttribution& wa = ledger.workers[w];
    wa.worker = static_cast<std::int32_t>(w);
    wa.cores = cores[w];
    wa.capacity = static_cast<std::int64_t>(cores[w]) * makespan;
    ledger.capacity += wa.capacity;
  }

  // Connected ("alive") time per worker from the UP/DOWN edge stream,
  // clipped to [0, makespan]. A worker still connected at the end of the
  // run is alive through the makespan.
  std::vector<Tick> up_since(cores.size(), -1);
  for (const WorkerEvent& e : log.worker_events()) {
    if (e.worker < 0 || static_cast<std::size_t>(e.worker) >= cores.size()) {
      continue;
    }
    const auto w = static_cast<std::size_t>(e.worker);
    const Tick t = clamp_tick(e.t, 0, makespan);
    if (e.up) {
      if (up_since[w] < 0) up_since[w] = t;
    } else if (up_since[w] >= 0) {
      ledger.workers[w].alive += t - up_since[w];
      up_since[w] = -1;
    }
  }
  for (std::size_t w = 0; w < cores.size(); ++w) {
    if (up_since[w] >= 0) ledger.workers[w].alive += makespan - up_since[w];
    WorkerAttribution& wa = ledger.workers[w];
    wa.ticks[idx(Blame::kPreempted)] =
        static_cast<std::int64_t>(wa.cores) * (makespan - wa.alive);
  }

  // Attempt occupancy: each attempt holds one core from dispatch until
  // the process exits (success) or the failure is observed. Successful
  // attempts split into phase segments; failed attempts are recovery
  // wholesale — the paper's "time lost to faults" is exactly the core
  // time burned by attempts that had to be redone.
  for (const AttemptSpan& a : log.attempts()) {
    if (a.worker < 0 || static_cast<std::size_t>(a.worker) >= cores.size()) {
      continue;
    }
    WorkerAttribution& wa = ledger.workers[static_cast<std::size_t>(a.worker)];
    TenantAttribution& tenant = ledger.tenants[a.category];
    tenant.attempts += 1;
    const Tick begin = clamp_tick(a.dispatched_at, 0, makespan);
    if (a.failed) {
      const Tick end = clamp_tick(std::max(a.retrieved_at, begin), 0,
                                  makespan);
      wa.ticks[idx(Blame::kRecovery)] += end - begin;
      tenant.ticks[idx(Blame::kRecovery)] += end - begin;
      continue;
    }
    const Tick end = clamp_tick(std::max(a.exec_end_at, begin), 0, makespan);
    // Monotone-clamp each boundary into [begin, end] so a missing (-1)
    // boundary degenerates to a zero-length segment instead of skewing
    // its neighbours.
    const Tick staged = clamp_tick(a.staged_at < 0 ? begin : a.staged_at,
                                   begin, end);
    const Tick exec = clamp_tick(a.exec_at < 0 ? staged : a.exec_at, staged,
                                 end);
    const Tick compute =
        clamp_tick(a.compute_at < 0 ? exec : a.compute_at, exec, end);
    const struct {
      Blame blame;
      Tick ticks;
    } segments[] = {
        {Blame::kDispatchWait, staged - begin},
        {Blame::kTransferWait, exec - staged},
        {Blame::kImport, compute - exec},
        {Blame::kCompute, end - compute},
    };
    for (const auto& s : segments) {
      wa.ticks[idx(s.blame)] += s.ticks;
      tenant.ticks[idx(s.blame)] += s.ticks;
    }
  }

  // Idle is the residual of connected capacity: what UP time no attempt
  // occupied. Negative idle (over-committed cores) fails identity_ok.
  for (WorkerAttribution& wa : ledger.workers) {
    std::int64_t occupied = 0;
    for (std::size_t c = 0; c < kBlameCount; ++c) {
      if (c == idx(Blame::kIdle) || c == idx(Blame::kPreempted)) continue;
      occupied += wa.ticks[c];
    }
    wa.ticks[idx(Blame::kIdle)] =
        static_cast<std::int64_t>(wa.cores) * wa.alive - occupied;
    for (std::size_t c = 0; c < kBlameCount; ++c) {
      ledger.ticks[c] += wa.ticks[c];
    }
  }

  return ledger;
}

}  // namespace hepvine::obs
