// Lifecycle spans: the raw material of the time-attribution profiler.
//
// Every scheduler backend decomposes each task attempt into the ordered
// phase boundaries of its life — queued → dispatched → staged (inputs
// fetched) → executing (interpreter up, imports done) → computing →
// process exit → result ingested — and records one AttemptSpan per
// attempt, successful or failed. Alongside the attempts the log carries
// worker arrival/departure events (the capacity timeline), wire-level flow
// spans reported by the network substrate, cache drop events from the
// disk lifecycle, and the manager's serial-loop busy time. Together these
// are sufficient to reconstruct *where every core-second of the run went*
// (obs/attribution.h) and *which dependency chain bounded the makespan*
// (obs/critical_path.h) without re-running anything.
//
// SpanLog is embedded by value in exec::RunReport and always on: recording
// is a push_back per attempt/flow/drop, cheap enough to leave enabled like
// metrics::TaskTrace. The log serializes to a line-oriented text format
// (".spans") that round-trips exactly, so the `vine_profile` CLI and CI
// replay gates operate on files; a run's serialized log is bit-identical
// across replays under the determinism contract (DESIGN.md §5).
//
// Layering: obs depends only on util, so the dependency edges a critical-
// path walk needs are copied in via set_deps rather than referencing
// dag::TaskGraph.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/units.h"

namespace hepvine::obs {

using util::Tick;

/// One task attempt's phase boundaries, in simulated microseconds.
/// A boundary of -1 means the attempt never reached that phase (e.g. it
/// failed during staging). For successful attempts every boundary is set
/// and ordered: ready ≤ dispatched ≤ staged ≤ exec ≤ compute ≤ exec_end ≤
/// retrieved. The occupied core span is [dispatched_at, exec_end_at] (the
/// process exit frees the core; result ingestion occupies only the
/// manager), or [dispatched_at, retrieved_at] for failed attempts.
struct AttemptSpan {
  std::int64_t task = -1;
  std::uint32_t attempt = 0;
  std::int32_t worker = -1;
  Tick ready_at = -1;       // became dispatchable (deps satisfied / requeued)
  Tick dispatched_at = -1;  // core reserved; manager serializing the dispatch
  Tick staged_at = -1;      // dispatch landed on the worker; input fetch began
  Tick exec_at = -1;        // all inputs resident; worker process started
  Tick compute_at = -1;     // startup/serialize/imports done; user code began
  Tick exec_end_at = -1;    // process exited (output written, core freed)
  Tick retrieved_at = -1;   // manager ingested the result / observed failure
  bool failed = false;
  std::string category;
};

/// One wire-level flow as seen by net::Network: setup + transfer from
/// start_flow to completion/cancellation/kill. `carried` is the bytes that
/// actually crossed the links (equal to `bytes` on completion).
struct FlowSpan {
  std::int64_t flow = -1;
  std::uint64_t bytes = 0;
  std::uint64_t carried = 0;
  Tick started_at = -1;
  Tick ended_at = -1;
  char outcome = 'D';  // 'D' done, 'C' cancelled, 'F' failed (injected kill)
};

/// A replica leaving a worker's disk (point event, PR 5 disk lifecycle).
struct CacheSpan {
  Tick t = -1;
  std::int32_t worker = -1;
  std::int64_t file = -1;
  std::uint64_t bytes = 0;
  char verb = 'E';  // 'E' evict, 'G' gc, 'S' sandbox cleanup, 'L' fault loss
};

/// Worker capacity edge: connection (`up`) or disconnection.
struct WorkerEvent {
  Tick t = -1;
  std::int32_t worker = -1;
  bool up = false;
};

class SpanLog {
 public:
  SpanLog() = default;

  // --- topology (recorded once, before the run) --------------------------
  /// Core count per configured worker slot; defines total capacity.
  void set_worker_cores(std::vector<std::uint32_t> cores) {
    worker_cores_ = std::move(cores);
  }
  /// Dependency edges of `task` (producer task ids), for critical-path
  /// extraction. Tasks without dependencies need no entry.
  void set_deps(std::int64_t task, std::vector<std::int64_t> deps) {
    if (!deps.empty()) deps_[task] = std::move(deps);
  }

  // --- recording ---------------------------------------------------------
  void worker_up(Tick t, std::int32_t worker) {
    worker_events_.push_back(WorkerEvent{t, worker, true});
  }
  void worker_down(Tick t, std::int32_t worker) {
    worker_events_.push_back(WorkerEvent{t, worker, false});
  }
  void add_attempt(AttemptSpan span) {
    attempts_.push_back(std::move(span));
  }
  void add_flow(FlowSpan span) { flows_.push_back(span); }
  void add_cache(CacheSpan span) { cache_.push_back(span); }
  /// Manager/scheduler serial-loop totals at end of run.
  void set_manager(Tick busy_ticks, std::uint64_t ops) {
    manager_busy_ticks_ = busy_ticks;
    manager_ops_ = ops;
  }
  /// Run envelope, recorded when the run finishes.
  void set_run(Tick makespan, std::string scheduler, bool success) {
    makespan_ = makespan;
    scheduler_ = std::move(scheduler);
    success_ = success;
  }

  // --- access ------------------------------------------------------------
  [[nodiscard]] const std::vector<std::uint32_t>& worker_cores() const {
    return worker_cores_;
  }
  [[nodiscard]] const std::map<std::int64_t, std::vector<std::int64_t>>&
  deps() const {
    return deps_;
  }
  [[nodiscard]] const std::vector<WorkerEvent>& worker_events() const {
    return worker_events_;
  }
  [[nodiscard]] const std::vector<AttemptSpan>& attempts() const {
    return attempts_;
  }
  [[nodiscard]] const std::vector<FlowSpan>& flows() const { return flows_; }
  [[nodiscard]] const std::vector<CacheSpan>& cache_events() const {
    return cache_;
  }
  [[nodiscard]] Tick manager_busy_ticks() const { return manager_busy_ticks_; }
  [[nodiscard]] std::uint64_t manager_ops() const { return manager_ops_; }
  [[nodiscard]] Tick makespan() const { return makespan_; }
  [[nodiscard]] const std::string& scheduler() const { return scheduler_; }
  [[nodiscard]] bool success() const { return success_; }

  /// True when nothing has been recorded (no attempts, flows, cache drops,
  /// or worker events) — the state a non-instrumented producer leaves.
  [[nodiscard]] bool empty() const {
    return attempts_.empty() && flows_.empty() && cache_.empty() &&
           worker_events_.empty();
  }

  // --- serialization -----------------------------------------------------
  /// Line-oriented text form; deterministic and round-trip exact.
  [[nodiscard]] std::string serialize() const;
  /// Write serialize() to `path`; false on I/O failure.
  bool write_file(const std::string& path) const;
  /// Parse a serialized log; nullopt when the text is not a spans file.
  [[nodiscard]] static std::optional<SpanLog> parse(const std::string& text);

 private:
  std::vector<std::uint32_t> worker_cores_;
  std::map<std::int64_t, std::vector<std::int64_t>> deps_;
  std::vector<WorkerEvent> worker_events_;
  std::vector<AttemptSpan> attempts_;
  std::vector<FlowSpan> flows_;
  std::vector<CacheSpan> cache_;
  Tick manager_busy_ticks_ = 0;
  std::uint64_t manager_ops_ = 0;
  Tick makespan_ = 0;
  std::string scheduler_;
  bool success_ = false;
};

class ChromeTraceBuilder;

/// Emit the per-attempt phase breakdown as nested Chrome-trace B/E events:
/// one "thread" per task on its worker's lane, an outer span per attempt
/// and nested phase spans (dispatch / fetch / import / execute / retrieve)
/// inside it. A log with no attempts emits nothing, leaving the builder's
/// output byte-identical.
void emit_lifecycle_trace(const SpanLog& log, ChromeTraceBuilder& trace);

}  // namespace hepvine::obs
