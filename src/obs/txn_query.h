// Transactions-log parsing and queries — the library behind the
// `tools/txn_query` CLI (our analogue of CCTools' `vine_plot_txn_log`).
//
// Answers the two questions every post-mortem starts with:
//   * "what happened to task N?" — its full WAITING→RUNNING→RETRIEVED→DONE
//     lifecycle with per-phase durations, and
//   * "where did the time go?" — per-category wait/run breakdowns across
//     all tasks.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/units.h"

namespace hepvine::obs::txnq {

using util::Tick;

/// One parsed transactions-log line.
struct Event {
  Tick t = 0;
  std::string subject;              // MANAGER, TASK, WORKER, CACHE, ...
  std::int64_t id = 0;              // task/worker/file id (or 0)
  std::string verb;                 // WAITING, RUNNING, DONE, INSERT, ...
  std::vector<std::string> rest;    // remaining whitespace-split fields
};

/// Parse a single line; returns nullopt for comments/blank/garbage.
[[nodiscard]] std::optional<Event> parse_line(const std::string& line);

/// Parse a whole log text (newline-separated), skipping unparsable lines.
[[nodiscard]] std::vector<Event> parse_log(const std::string& text);

/// Heuristic: does `text` look like a transactions log — the `# time_us`
/// header comment or at least one parsable event line? CLIs use this to
/// give a pointed diagnostic when a txn log is handed to the span-log
/// profiler (or vice versa) instead of a generic parse error.
[[nodiscard]] bool looks_like_txn_log(const std::string& text);

/// Reconstructed lifecycle of one task (last attempt wins for the
/// RUNNING/RETRIEVED timestamps; `attempts` counts WAITING records).
struct TaskLifetime {
  std::int64_t task = -1;
  std::string category;
  std::uint32_t attempts = 0;
  std::int32_t worker = -1;     // worker of the final RUNNING record
  Tick waiting_at = -1;         // first WAITING
  Tick running_at = -1;         // last RUNNING
  Tick retrieved_at = -1;       // last RETRIEVED
  Tick done_at = -1;            // DONE
  bool done = false;

  [[nodiscard]] bool complete() const {
    return waiting_at >= 0 && running_at >= 0 && retrieved_at >= 0 && done;
  }
  [[nodiscard]] Tick wait_time() const {
    return running_at >= 0 && waiting_at >= 0 ? running_at - waiting_at : 0;
  }
  [[nodiscard]] Tick run_time() const {
    return retrieved_at >= 0 && running_at >= 0 ? retrieved_at - running_at
                                                : 0;
  }
};

/// Lifetime of task `id`; nullopt if the log has no record of it.
[[nodiscard]] std::optional<TaskLifetime> task_lifetime(
    const std::vector<Event>& events, std::int64_t id);

/// Lifetimes of every task mentioned in the log, keyed by id.
[[nodiscard]] std::map<std::int64_t, TaskLifetime> all_task_lifetimes(
    const std::vector<Event>& events);

/// Aggregate wait/run breakdown for one task category.
struct CategoryBreakdown {
  std::size_t tasks = 0;
  std::size_t attempts = 0;
  Tick total_wait = 0;
  Tick total_run = 0;
};

/// Per-category breakdown over all completed tasks.
[[nodiscard]] std::map<std::string, CategoryBreakdown> category_breakdown(
    const std::vector<Event>& events);

/// Human-readable rendering of one task's lifecycle (multi-line).
[[nodiscard]] std::string format_lifetime(const TaskLifetime& lt);

/// Human-readable per-category table.
[[nodiscard]] std::string format_breakdown(
    const std::map<std::string, CategoryBreakdown>& breakdown);

/// Worker session summary: connections, disconnections by reason.
struct WorkerSummary {
  std::size_t connections = 0;
  std::map<std::string, std::size_t> disconnections_by_reason;
};
[[nodiscard]] WorkerSummary worker_summary(const std::vector<Event>& events);

/// Cache-lifecycle rollup over the CACHE lines: how data entered worker
/// disks (INSERT) and the three ways it left — pressure eviction (EVICT),
/// ref-count garbage collection (GC), and injected loss (LOST).
struct CacheSummary {
  std::size_t inserts = 0;
  std::size_t evictions = 0;
  std::size_t gc_drops = 0;
  std::size_t losses = 0;
  std::uint64_t inserted_bytes = 0;
  std::uint64_t evicted_bytes = 0;
  std::uint64_t gc_bytes = 0;
  std::uint64_t lost_bytes = 0;
};
[[nodiscard]] CacheSummary cache_summary(const std::vector<Event>& events);

/// Human-readable cache-lifecycle table.
[[nodiscard]] std::string format_cache_summary(const CacheSummary& cs);

/// Object-store lifecycle rollup over the STORE lines: outputs entering
/// the node-local in-memory store (PUT), by-reference handles taken by
/// colocated consumers (REF), objects materialized to disk (SPILL — each
/// pairs with a CACHE INSERT for the same file), and in-memory deaths
/// (DROP).
struct StoreSummary {
  std::size_t puts = 0;
  std::size_t refs = 0;
  std::size_t spills = 0;
  std::size_t drops = 0;
  std::uint64_t put_bytes = 0;
  std::uint64_t ref_bytes = 0;
  std::uint64_t spilled_bytes = 0;
  std::uint64_t dropped_bytes = 0;
};
[[nodiscard]] StoreSummary store_summary(const std::vector<Event>& events);

/// Human-readable object-store lifecycle table.
[[nodiscard]] std::string format_store_summary(const StoreSummary& ss);

/// One `SPAN task ATTEMPT ...` record: the full lifecycle phase
/// boundaries of a task attempt (see obs/txn_log.h for the line format).
/// `retrieved` is the line's own timestamp — the manager finalized the
/// attempt then. Boundaries the attempt never reached are -1.
struct SpanRecord {
  std::int64_t task = -1;
  std::uint32_t attempt = 0;
  std::int32_t worker = -1;
  Tick ready = -1;
  Tick dispatched = -1;
  Tick staged = -1;
  Tick exec = -1;
  Tick compute = -1;
  Tick exec_end = -1;
  Tick retrieved = -1;
  bool success = false;
  std::string category;
};

/// All SPAN ATTEMPT records in the log, in emission order.
[[nodiscard]] std::vector<SpanRecord> span_records(
    const std::vector<Event>& events);

/// Blame rollup over the core time occupied by the recorded attempts. A
/// txn log carries no cluster-capacity information, so unlike the full
/// attribution ledger this has no idle/preempted categories — it answers
/// "how was occupied core time spent", not "where did capacity go".
struct ProfileRollup {
  std::size_t attempts = 0;
  std::size_t failures = 0;
  Tick compute = 0;
  Tick import_cost = 0;
  Tick transfer_wait = 0;
  Tick dispatch_wait = 0;
  Tick recovery = 0;

  [[nodiscard]] Tick occupied() const {
    return compute + import_cost + transfer_wait + dispatch_wait + recovery;
  }
};
[[nodiscard]] ProfileRollup profile_rollup(
    const std::vector<SpanRecord>& spans);

/// One link of the critical chain reconstructed from the log: `task`
/// could not become ready before `gate` (its slowest predecessor's DONE
/// time) and its process exited at `finish`.
struct ChainLink {
  std::int64_t task = -1;
  Tick gate = -1;
  Tick finish = -1;
  SpanRecord span;
};

/// Walk back from the last task to finish, at each step following the
/// task whose DONE line coincides with this task's ready time (ties to
/// the smallest id). Head first. The reconstruction is timestamp-based:
/// a requeued link (ready gated by a retry rather than a dependency)
/// terminates the chain.
[[nodiscard]] std::vector<ChainLink> critical_chain(
    const std::vector<Event>& events);

/// Human-readable profile: blame rollup plus the top-`top_k`
/// critical-chain links.
[[nodiscard]] std::string format_profile(const std::vector<Event>& events,
                                         std::size_t top_k);

}  // namespace hepvine::obs::txnq
