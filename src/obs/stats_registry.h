// Counter/gauge registry backing the performance log.
//
// Subsystems (scheduler, batch system, flow network, shared filesystem)
// register named metrics once per run; the PerfLog samples every metric on
// a fixed simulated-time cadence. Counters are monotonically increasing
// integers owned by the registry (emitters hold a stable pointer); gauges
// are read-on-sample callbacks into live subsystem state. Registration
// order is preserved so perf-log columns are stable across runs.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace hepvine::obs {

class StatsRegistry {
 public:
  using GaugeFn = std::function<double()>;

  StatsRegistry() = default;
  StatsRegistry(const StatsRegistry&) = delete;
  StatsRegistry& operator=(const StatsRegistry&) = delete;

  /// Register (or re-fetch) a counter. The returned pointer is stable for
  /// the registry's lifetime; increment it directly on the hot path.
  std::uint64_t* counter(const std::string& name);

  /// Register a gauge sampled via `fn`. Re-registering a name replaces the
  /// callback (a fresh run re-binds gauges to fresh subsystem objects).
  void gauge(const std::string& name, GaugeFn fn);

  /// Column names, registration order (counters and gauges interleaved).
  [[nodiscard]] std::vector<std::string> names() const;

  /// Current value of every metric, in names() order.
  [[nodiscard]] std::vector<double> sample() const;

  /// Current value of one metric by name (0 if unknown).
  [[nodiscard]] double value(const std::string& name) const;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Drop gauge callbacks (they capture references into subsystems that may
  /// not outlive the report) while keeping their last sampled values.
  void detach_gauges();

 private:
  struct Entry {
    std::string name;
    bool is_counter = false;
    std::uint64_t count = 0;   // counters (stable address via deque-like use)
    GaugeFn fn;                // gauges
    double last = 0.0;         // value frozen by detach_gauges()
    bool detached = false;
  };

  [[nodiscard]] double read(const Entry& e) const;

  // Entries are held by pointer so counter addresses stay stable as the
  // registry grows.
  std::vector<std::unique_ptr<Entry>> entries_;
  std::map<std::string, std::size_t> index_;
};

}  // namespace hepvine::obs
