// Transactions log: structured lifecycle events in TaskVine's
// transactions-log text format, driven off simulated time.
//
// One line per event, `time_us SUBJECT id EVENT ...`, mirroring the real
// manager's always-on log that `vine_plot_txn_log` consumes:
//
//   time MANAGER START|END
//   time TASK id WAITING category attempt
//   time TASK id RUNNING worker_id
//   time TASK id RETRIEVED reason
//   time TASK id DONE reason
//   time WORKER id CONNECTION|DISCONNECTION reason
//   time CACHE file_id INSERT|EVICT|GC|LOST size_bytes worker_id
//   time STORE file_id PUT|REF|SPILL|DROP size_bytes worker_id
//   time TRANSFER src dst file_id size_bytes START|DONE|FAILED
//   time LIBRARY worker_id SENT|STARTED
//   time FAULT seq KIND detail
//   time NET flow_id WARN detail
//   time SPAN task ATTEMPT attempt worker ready dispatched staged exec
//        compute exec_end SUCCESS|FAILURE category
//
// Endpoints in TRANSFER lines use the transfer-matrix numbering
// (0 = manager, 1..N = workers, N+1 = shared filesystem).
//
// The writer is a bounded ring buffer so million-task runs don't blow
// memory: `tail()` returns the most recent `capacity` lines; when a file
// path is configured, every line also streams to disk as it is recorded,
// so the on-disk log is always complete.
#pragma once

#include <cstdint>
#include <cstdio>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "util/units.h"

namespace hepvine::obs {

using util::Tick;

/// Registry of every subject that may appear in a transactions-log line.
/// This table is the machine-readable contract for the log format:
/// `txn_query` drives its parser off it, and vine_lint rule VL005
/// (txn-subject) rejects any emitter whose subject is missing here — so
/// adding an emitter means adding a row first.
struct TxnSubjectInfo {
  const char* name = "";
  /// True when the first operand after the subject is a numeric id that
  /// txn_query should surface as Event::id (TRANSFER leads with src/dst
  /// endpoints instead, so its id stays 0 and fields land in rest).
  bool id_first = false;
};

inline constexpr TxnSubjectInfo kTxnSubjects[] = {
    {"MANAGER", true}, {"TASK", true},  {"WORKER", true},
    {"CACHE", true},   {"TRANSFER", false}, {"LIBRARY", true},
    {"FAULT", true},   {"NET", true},   {"SPAN", true},
    {"SNAPSHOT", true}, {"RECOVER", true}, {"STORE", true},
};

[[nodiscard]] constexpr bool txn_subject_registered(std::string_view s) {
  for (const TxnSubjectInfo& info : kTxnSubjects) {
    if (s == info.name) return true;
  }
  return false;
}

[[nodiscard]] constexpr bool txn_subject_id_first(std::string_view s) {
  for (const TxnSubjectInfo& info : kTxnSubjects) {
    if (s == info.name) return info.id_first;
  }
  return false;
}

class TxnLog {
 public:
  /// Disabled log: every record call is a cheap no-op.
  TxnLog() = default;

  /// Enabled log keeping at most `ring_capacity` lines in memory and, if
  /// `path` is non-empty, streaming every line to that file.
  TxnLog(std::size_t ring_capacity, const std::string& path);

  ~TxnLog();
  TxnLog(const TxnLog&) = delete;
  TxnLog& operator=(const TxnLog&) = delete;

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  // --- typed emitters ----------------------------------------------------
  void manager_start(Tick t) { line(t, "MANAGER 0 START"); }
  void manager_end(Tick t) { line(t, "MANAGER 0 END"); }

  void task_waiting(Tick t, std::int64_t task, const std::string& category,
                    std::uint32_t attempt);
  void task_running(Tick t, std::int64_t task, std::int32_t worker);
  void task_retrieved(Tick t, std::int64_t task, const char* reason);
  void task_done(Tick t, std::int64_t task, const char* reason);

  void worker_connection(Tick t, std::int32_t worker);
  void worker_disconnection(Tick t, std::int32_t worker, const char* reason);

  void cache_insert(Tick t, std::int32_t worker, std::int64_t file,
                    std::uint64_t bytes);
  /// EVICT: a copy removed by the scheduler's own disk management (LRU
  /// pressure eviction, Work Queue sandbox cleanup).
  void cache_evict(Tick t, std::int32_t worker, std::int64_t file,
                   std::uint64_t bytes);
  /// GC: the manager garbage-collected a replica because every consumer of
  /// the file has completed (its reference count reached zero).
  void cache_gc(Tick t, std::int32_t worker, std::int64_t file,
                std::uint64_t bytes);
  /// LOST: a copy destroyed by a fault (injected cache loss) — unlike
  /// EVICT/GC this was not the scheduler's decision, and the FAULT line
  /// carries the injection record.
  void cache_lost(Tick t, std::int32_t worker, std::int64_t file,
                  std::uint64_t bytes);

  /// PUT: a FunctionCall output became a node-local in-memory store
  /// object on `worker` — no serialization, no disk write.
  void store_put(Tick t, std::int32_t worker, std::int64_t file,
                 std::uint64_t bytes);
  /// REF: a consumer dispatched to the holder took a by-reference handle
  /// on the object for the lifetime of its attempt.
  void store_ref(Tick t, std::int32_t worker, std::int64_t file,
                 std::uint64_t bytes);
  /// SPILL: the object was materialized on the holder's scratch disk
  /// (capacity pressure, or a remote consumer needs the bytes); an
  /// ordinary `CACHE INSERT` for the same file follows and the file joins
  /// the replica table.
  void store_spill(Tick t, std::int32_t worker, std::int64_t file,
                   std::uint64_t bytes);
  /// DROP: the object died in memory (reference count drained, or its
  /// holder was wiped) without ever touching disk.
  void store_drop(Tick t, std::int32_t worker, std::int64_t file,
                  std::uint64_t bytes);

  void transfer_start(Tick t, std::size_t src, std::size_t dst,
                      std::int64_t file, std::uint64_t bytes);
  void transfer_done(Tick t, std::size_t src, std::size_t dst,
                     std::int64_t file, std::uint64_t bytes);
  void transfer_failed(Tick t, std::size_t src, std::size_t dst,
                       std::int64_t file, std::uint64_t bytes);

  void library_sent(Tick t, std::int32_t worker);
  void library_started(Tick t, std::int32_t worker);

  /// `time FAULT seq KIND detail` — one line per injected fault, so a
  /// schedule can be replayed/diffed straight from the transactions log.
  void fault_injected(Tick t, std::uint64_t seq, const char* kind,
                      const std::string& detail);

  /// `time NET flow_id WARN detail` — a network-substrate anomaly the
  /// simulator self-healed from (e.g. a starved flow rescued by a
  /// rescheduled recompute). Should never appear in a healthy run.
  void net_warn(Tick t, std::int64_t flow, const char* detail);

  /// `time SPAN task ATTEMPT attempt worker ready dispatched staged exec
  /// compute exec_end SUCCESS|FAILURE category` — one line per completed
  /// task attempt carrying its full lifecycle phase boundaries, emitted
  /// when the attempt is finalized. `txn_query profile` reconstructs the
  /// blame rollup and critical chain from these. Boundaries the attempt
  /// never reached are -1.
  void span_attempt(Tick t, std::int64_t task, std::uint32_t attempt,
                    std::int32_t worker, Tick ready, Tick dispatched,
                    Tick staged, Tick exec, Tick compute, Tick exec_end,
                    bool success, const std::string& category);

  /// `time SNAPSHOT seq WRITE size_bytes digest` — the manager serialized
  /// its logical state (ha/snapshot.h). The digest lets ha::recover() find
  /// the matching convergence point in a rerun's journal, and the line
  /// itself is the anchor the txn-tail comparison cuts at.
  void snapshot_write(Tick t, std::uint64_t seq, std::uint64_t bytes,
                      const std::string& digest);

  /// `time RECOVER seq PHASE detail` — one line per recovery-protocol
  /// phase (RESTORE, REPLAY, DONE), written by ha::recover() into its
  /// journal rather than the live campaign stream: the recovering manager's
  /// own log must stay byte-comparable to the uninterrupted run's.
  void recover_phase(Tick t, std::uint64_t seq, const char* phase,
                     const std::string& detail);

  // --- inspection --------------------------------------------------------
  /// Total events recorded (including lines already rotated out of the
  /// ring).
  [[nodiscard]] std::uint64_t events() const noexcept { return events_; }

  /// Events dropped from the in-memory ring (still on disk if streaming).
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  /// The most recent lines, oldest first.
  [[nodiscard]] std::vector<std::string> tail() const;

  /// All retained lines joined with newlines (a full log when the run was
  /// smaller than the ring).
  [[nodiscard]] std::string text() const;

  void flush();

 private:
  void line(Tick t, const char* body);
  void push(std::string line);

  bool enabled_ = false;
  std::size_t capacity_ = 0;
  std::deque<std::string> ring_;
  std::uint64_t events_ = 0;
  std::uint64_t dropped_ = 0;
  std::FILE* file_ = nullptr;
};

}  // namespace hepvine::obs
