// Node-local zero-copy object store for serverless outputs.
//
// The paper's serverless stack (LibraryTask + FunctionCall) still pays
// full serialization and a scratch-disk write to move an output between
// two FunctionCalls forked from the same LibraryTask — processes that
// share a node and could exchange a pointer. Vineyard-style shared-memory
// stores fix exactly this: the producer publishes its output into a
// per-node memory segment and colocated consumers map it by reference.
//
// This module is the bookkeeping core of that idea for the simulator:
// one logical store per worker node, each object held by exactly one
// node (objects are never copied between stores — a remote consumer
// forces a SPILL, after which the bytes live in the ordinary replica
// table and travel the existing peer-transfer paths). Objects are
// ref-counted by running consumer attempts; unreferenced objects are
// spill victims in LRU order when the per-node byte budget is exceeded.
//
// The store carries manager-visible logical state only: the scheduler
// (src/vine) drives every transition and serializes the store into its
// HA snapshot, so recovery stays bit-identical with the store enabled.
#pragma once

#include <cstdint>
#include <vector>

#include "data/file_catalog.h"
#include "util/flat_map.h"
#include "util/units.h"

namespace hepvine::objstore {

using util::Tick;
using data::FileId;

/// Worker index of an object's holder; mirrors cluster::WorkerId.
using NodeId = std::int32_t;
inline constexpr NodeId kNoHolder = -1;

/// One in-memory object: a task output that never touched disk.
// vine-snapshot: state
struct StoreEntry {
  std::uint64_t bytes = 0;   // payload size (== catalog file size)
  std::uint32_t refs = 0;    // live by-reference consumer attempts
  Tick put_at = 0;           // publication time; LRU spill order
};

/// Lifetime counters, mirrored into RunReport by the scheduler.
// vine-snapshot: state
struct StoreCounters {
  std::uint64_t puts = 0;
  std::uint64_t put_bytes = 0;
  std::uint64_t ref_hits = 0;
  std::uint64_t spills = 0;
  std::uint64_t spill_bytes = 0;
  std::uint64_t drops = 0;
};

/// A snapshot-iteration row: one object with its holder.
struct StoreItem {
  NodeId holder = kNoHolder;
  FileId file = data::kInvalidFile;
  StoreEntry entry;
};

// vine-snapshot: state
class ObjectStore {
 public:
  ObjectStore() = default;

  /// (Re)initialize for `nodes` workers with a per-node byte budget.
  void reset(std::size_t nodes, std::uint64_t capacity_bytes);

  /// Publish `file` (`bytes` payload) into node `n`'s store. The caller
  /// guarantees the object is not already stored anywhere.
  void put(NodeId n, FileId file, std::uint64_t bytes, Tick now);

  /// Does node `n` hold `file` in memory?
  [[nodiscard]] bool holds(NodeId n, FileId file) const;

  /// The single node holding `file` in memory, or kNoHolder.
  [[nodiscard]] NodeId holder_of(FileId file) const;

  /// Payload size of `file` on node `n` (0 when absent).
  [[nodiscard]] std::uint64_t object_bytes(NodeId n, FileId file) const;

  /// Take / release a by-reference handle. Release is tolerant of an
  /// object that was force-spilled or wiped while referenced.
  void add_ref(NodeId n, FileId file);
  void release_ref(NodeId n, FileId file);

  /// Remove the object; returns false when it was not present.
  bool erase(NodeId n, FileId file);

  /// Wipe node `n`'s store (worker death). Silent, like the replica
  /// table's drop_worker: the worker's DISCONNECTION line covers it.
  void drop_node(NodeId n);

  /// The LRU *unreferenced* object on node `n` — the next spill victim —
  /// or kInvalidFile when every resident object has live references
  /// (the store then tolerates running over budget).
  [[nodiscard]] FileId spill_victim(NodeId n) const;

  [[nodiscard]] bool over_capacity(NodeId n) const {
    return used(n) > capacity_;
  }

  [[nodiscard]] std::uint64_t used(NodeId n) const;
  [[nodiscard]] std::uint64_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t total_objects() const;

  [[nodiscard]] StoreCounters& counters() { return counters_; }
  [[nodiscard]] const StoreCounters& counters() const { return counters_; }

  /// All resident objects in ascending (file id) order — the snapshot
  /// serialization order. Each file has exactly one holder, so file id
  /// alone is a total order.
  [[nodiscard]] std::vector<StoreItem> objects() const;

 private:
  std::vector<util::FlatMap<FileId, StoreEntry>> objects_;  // per node
  util::FlatMap<FileId, NodeId> holder_;  // file -> its single holder
  std::vector<std::uint64_t> used_;       // per-node resident bytes
  std::uint64_t capacity_ = 0;            // per-node byte budget
  StoreCounters counters_;
};

}  // namespace hepvine::objstore
