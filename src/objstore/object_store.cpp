#include "objstore/object_store.h"

#include <cassert>

namespace hepvine::objstore {

void ObjectStore::reset(std::size_t nodes, std::uint64_t capacity_bytes) {
  objects_.assign(nodes, {});
  used_.assign(nodes, 0);
  holder_.clear();
  capacity_ = capacity_bytes;
  counters_ = StoreCounters{};
}

void ObjectStore::put(NodeId n, FileId file, std::uint64_t bytes, Tick now) {
  assert(holder_of(file) == kNoHolder);
  auto& node = objects_[static_cast<std::size_t>(n)];
  StoreEntry entry;
  entry.bytes = bytes;
  entry.put_at = now;
  node.emplace(file, entry);
  holder_[file] = n;
  used_[static_cast<std::size_t>(n)] += bytes;
  counters_.puts += 1;
  counters_.put_bytes += bytes;
}

bool ObjectStore::holds(NodeId n, FileId file) const {
  if (n < 0 || static_cast<std::size_t>(n) >= objects_.size()) return false;
  return objects_[static_cast<std::size_t>(n)].contains(file);
}

NodeId ObjectStore::holder_of(FileId file) const {
  auto it = holder_.find(file);
  return it == holder_.end() ? kNoHolder : it->second;
}

std::uint64_t ObjectStore::object_bytes(NodeId n, FileId file) const {
  if (n < 0 || static_cast<std::size_t>(n) >= objects_.size()) return 0;
  const auto& node = objects_[static_cast<std::size_t>(n)];
  auto it = node.find(file);
  return it == node.end() ? 0 : it->second.bytes;
}

void ObjectStore::add_ref(NodeId n, FileId file) {
  auto& node = objects_[static_cast<std::size_t>(n)];
  auto it = node.find(file);
  assert(it != node.end());
  it->second.refs += 1;
  counters_.ref_hits += 1;
}

void ObjectStore::release_ref(NodeId n, FileId file) {
  if (n < 0 || static_cast<std::size_t>(n) >= objects_.size()) return;
  auto& node = objects_[static_cast<std::size_t>(n)];
  auto it = node.find(file);
  if (it == node.end() || it->second.refs == 0) return;
  it->second.refs -= 1;
}

bool ObjectStore::erase(NodeId n, FileId file) {
  if (n < 0 || static_cast<std::size_t>(n) >= objects_.size()) return false;
  auto& node = objects_[static_cast<std::size_t>(n)];
  auto it = node.find(file);
  if (it == node.end()) return false;
  used_[static_cast<std::size_t>(n)] -= it->second.bytes;
  node.erase(it);
  holder_.erase(file);
  return true;
}

void ObjectStore::drop_node(NodeId n) {
  if (n < 0 || static_cast<std::size_t>(n) >= objects_.size()) return;
  auto& node = objects_[static_cast<std::size_t>(n)];
  for (const auto& [file, entry] : node) holder_.erase(file);
  node.clear();
  used_[static_cast<std::size_t>(n)] = 0;
}

FileId ObjectStore::spill_victim(NodeId n) const {
  const auto& node = objects_[static_cast<std::size_t>(n)];
  FileId victim = data::kInvalidFile;
  Tick oldest = 0;
  for (const auto& [file, entry] : node) {
    if (entry.refs > 0) continue;
    if (victim == data::kInvalidFile || entry.put_at < oldest) {
      victim = file;
      oldest = entry.put_at;
    }
  }
  return victim;
}

std::uint64_t ObjectStore::used(NodeId n) const {
  if (n < 0 || static_cast<std::size_t>(n) >= used_.size()) return 0;
  return used_[static_cast<std::size_t>(n)];
}

std::size_t ObjectStore::total_objects() const { return holder_.size(); }

std::vector<StoreItem> ObjectStore::objects() const {
  std::vector<StoreItem> out;
  out.reserve(holder_.size());
  for (const auto& [file, node] : holder_) {
    StoreItem item;
    item.holder = node;
    item.file = file;
    const auto& entries = objects_[static_cast<std::size_t>(node)];
    auto it = entries.find(file);
    if (it != entries.end()) item.entry = it->second;
    out.push_back(item);
  }
  return out;
}

}  // namespace hepvine::objstore
