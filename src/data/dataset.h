// Dataset description: a named collection of ROOT-like files, each holding
// a number of event chunks. Mirrors how Coffea partitions inputs
// (`chunks_per_file` in the paper's Fig 4 listing): the unit of work is a
// chunk, the unit of storage is a file.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/file_catalog.h"

namespace hepvine::data {

struct RootFileSpec {
  std::string name;
  std::uint64_t bytes = 0;
  std::uint32_t chunks = 1;
  std::uint64_t events = 0;  // physics events stored in the file
};

struct DatasetSpec {
  std::string name;
  std::vector<RootFileSpec> files;

  [[nodiscard]] std::uint64_t total_bytes() const;
  [[nodiscard]] std::uint64_t total_events() const;
  [[nodiscard]] std::uint32_t total_chunks() const;
};

/// Build a uniform dataset: `nfiles` files of `bytes_per_file`, each split
/// into `chunks_per_file` chunks carrying `events_per_chunk` events.
[[nodiscard]] DatasetSpec make_uniform_dataset(std::string name,
                                               std::uint32_t nfiles,
                                               std::uint64_t bytes_per_file,
                                               std::uint32_t chunks_per_file,
                                               std::uint64_t events_per_chunk);

/// One schedulable slice of a dataset (a chunk of a file).
struct ChunkRef {
  std::uint32_t file_index = 0;
  std::uint32_t chunk_index = 0;
  FileId file_id = kInvalidFile;   // catalog id of the containing file
  std::uint64_t bytes = 0;         // bytes this chunk contributes
  std::uint64_t events = 0;
  std::uint64_t seed = 0;          // deterministic generator seed
};

/// Register the dataset in `catalog` and enumerate its chunks. Each chunk
/// becomes its own catalog entry (uproot/XRootD read only the byte ranges a
/// task needs, so the schedulable/stageable unit is the chunk, not the
/// whole ROOT file). `run_seed` feeds the per-chunk generator seeds so
/// synthetic event content is reproducible across schedulers and runs.
[[nodiscard]] std::vector<ChunkRef> register_dataset(
    const DatasetSpec& spec, FileCatalog& catalog, std::uint64_t run_seed);

}  // namespace hepvine::data
