#include "data/file_catalog.h"

#include <utility>

namespace hepvine::data {

const char* to_string(FileKind kind) {
  switch (kind) {
    case FileKind::kDatasetInput:
      return "input";
    case FileKind::kIntermediate:
      return "intermediate";
    case FileKind::kFunctionBody:
      return "function";
    case FileKind::kEnvironment:
      return "environment";
    case FileKind::kOutput:
      return "output";
  }
  return "unknown";
}

std::string LogicalFile::cachename() const {
  return std::string(to_string(kind)) + "-" + content.hex();
}

FileId FileCatalog::add(std::string name, FileKind kind, std::uint64_t size,
                        std::uint64_t content_seed) {
  LogicalFile file;
  file.id = static_cast<FileId>(files_.size());
  file.name = std::move(name);
  file.kind = kind;
  file.size = size;
  file.content = util::Hasher(content_seed)
                     .update(file.name)
                     .update_u64(static_cast<std::uint64_t>(kind))
                     .update_u64(size)
                     .digest();
  files_.push_back(std::move(file));
  return files_.back().id;
}

std::uint64_t FileCatalog::total_bytes(FileKind kind) const {
  std::uint64_t total = 0;
  for (const auto& f : files_) {
    if (f.kind == kind) total += f.size;
  }
  return total;
}

}  // namespace hepvine::data
