#include "data/dataset.h"

#include <utility>

#include "util/hash.h"

namespace hepvine::data {

std::uint64_t DatasetSpec::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& f : files) total += f.bytes;
  return total;
}

std::uint64_t DatasetSpec::total_events() const {
  std::uint64_t total = 0;
  for (const auto& f : files) total += f.events;
  return total;
}

std::uint32_t DatasetSpec::total_chunks() const {
  std::uint32_t total = 0;
  for (const auto& f : files) total += f.chunks;
  return total;
}

DatasetSpec make_uniform_dataset(std::string name, std::uint32_t nfiles,
                                 std::uint64_t bytes_per_file,
                                 std::uint32_t chunks_per_file,
                                 std::uint64_t events_per_chunk) {
  DatasetSpec spec;
  spec.name = std::move(name);
  spec.files.reserve(nfiles);
  for (std::uint32_t i = 0; i < nfiles; ++i) {
    RootFileSpec file;
    file.name = spec.name + "/part-" + std::to_string(i) + ".root";
    file.bytes = bytes_per_file;
    file.chunks = chunks_per_file;
    file.events = events_per_chunk * chunks_per_file;
    spec.files.push_back(std::move(file));
  }
  return spec;
}

std::vector<ChunkRef> register_dataset(const DatasetSpec& spec,
                                       FileCatalog& catalog,
                                       std::uint64_t run_seed) {
  std::vector<ChunkRef> chunks;
  chunks.reserve(spec.total_chunks());
  for (std::uint32_t fi = 0; fi < spec.files.size(); ++fi) {
    const RootFileSpec& file = spec.files[fi];
    const std::uint32_t n = file.chunks == 0 ? 1 : file.chunks;
    const std::uint64_t chunk_bytes = file.bytes / n;
    const std::uint64_t chunk_events = file.events / n;
    for (std::uint32_t ci = 0; ci < n; ++ci) {
      // Each chunk is registered as its own addressable unit: uproot /
      // XRootD read only the byte ranges (columns x entry range) a task
      // needs, so staging a chunk does not move the whole ROOT file.
      const FileId fid = catalog.add(
          file.name + "#chunk" + std::to_string(ci),
          FileKind::kDatasetInput, chunk_bytes, run_seed + fi * 131 + ci);
      ChunkRef ref;
      ref.file_index = fi;
      ref.chunk_index = ci;
      ref.file_id = fid;
      ref.bytes = chunk_bytes;
      ref.events = chunk_events;
      ref.seed = util::Hasher(run_seed)
                     .update(spec.name)
                     .update_u64(fi)
                     .update_u64(ci)
                     .digest64();
      chunks.push_back(ref);
    }
  }
  return chunks;
}

}  // namespace hepvine::data
