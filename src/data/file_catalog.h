// Logical files and the catalog that names them.
//
// Every piece of data a workflow touches — dataset inputs living on the
// shared filesystem, intermediate results produced by tasks, serialized
// function bodies, library environments — is a LogicalFile with a unique id
// and a content-derived "cachename". The cachename is how TaskVine makes
// replicas interchangeable: a file staged on any worker under its cachename
// satisfies any task that depends on it (Section IV-B of the paper).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/hash.h"

namespace hepvine::data {

using FileId = std::int64_t;
inline constexpr FileId kInvalidFile = -1;

enum class FileKind : std::uint8_t {
  kDatasetInput,   // lives on the shared filesystem / data store
  kIntermediate,   // produced by a task; recoverable via lineage
  kFunctionBody,   // serialized function + arguments (standard task mode)
  kEnvironment,    // library/software environment (serverless LibraryTask)
  kOutput,         // final workflow result
};

[[nodiscard]] const char* to_string(FileKind kind);

struct LogicalFile {
  FileId id = kInvalidFile;
  std::string name;
  FileKind kind = FileKind::kIntermediate;
  std::uint64_t size = 0;
  util::Digest128 content{};

  /// Content-derived cluster-wide name (metadata + content digest).
  [[nodiscard]] std::string cachename() const;
};

/// Registry of every logical file in a workflow run. Append-only; ids are
/// dense and stable, so schedulers index replica tables by FileId.
class FileCatalog {
 public:
  FileCatalog() = default;

  /// Register a file; fills in `id` and a content digest derived from the
  /// name, kind, size, and an optional content seed.
  FileId add(std::string name, FileKind kind, std::uint64_t size,
             std::uint64_t content_seed = 0);

  [[nodiscard]] const LogicalFile& get(FileId id) const {
    return files_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] std::size_t size() const noexcept { return files_.size(); }

  /// Update the recorded size of an intermediate once its producing task
  /// has run (sizes of intermediates are known only at production time).
  void set_size(FileId id, std::uint64_t size) {
    files_[static_cast<std::size_t>(id)].size = size;
  }

  [[nodiscard]] std::uint64_t total_bytes(FileKind kind) const;

  [[nodiscard]] auto begin() const { return files_.begin(); }
  [[nodiscard]] auto end() const { return files_.end(); }

 private:
  std::vector<LogicalFile> files_;
};

}  // namespace hepvine::data
