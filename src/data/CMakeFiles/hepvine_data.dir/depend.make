# Empty dependencies file for hepvine_data.
# This may be replaced when dependencies are built.
