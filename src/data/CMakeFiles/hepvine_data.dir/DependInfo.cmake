
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cpp" "src/data/CMakeFiles/hepvine_data.dir/dataset.cpp.o" "gcc" "src/data/CMakeFiles/hepvine_data.dir/dataset.cpp.o.d"
  "/root/repo/src/data/file_catalog.cpp" "src/data/CMakeFiles/hepvine_data.dir/file_catalog.cpp.o" "gcc" "src/data/CMakeFiles/hepvine_data.dir/file_catalog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/util/CMakeFiles/hepvine_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
