file(REMOVE_RECURSE
  "CMakeFiles/hepvine_data.dir/dataset.cpp.o"
  "CMakeFiles/hepvine_data.dir/dataset.cpp.o.d"
  "CMakeFiles/hepvine_data.dir/file_catalog.cpp.o"
  "CMakeFiles/hepvine_data.dir/file_catalog.cpp.o.d"
  "libhepvine_data.a"
  "libhepvine_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hepvine_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
