file(REMOVE_RECURSE
  "libhepvine_data.a"
)
