// Dask.Distributed baseline (the comparison of paper Figs 14a/14b).
//
// Structural differences from TaskVine, mirrored from the paper's
// Section V-B discussion:
//
//  * GIL: a threaded 12-core Dask worker effectively uses one core, so the
//    deployment runs twelve independent single-core worker *processes* per
//    node that share nothing — each pays its own library imports and holds
//    its own results.
//  * Results live in process memory, not on disk: a process that
//    accumulates more than its memory slice is killed and restarted,
//    losing everything it held.
//  * The centralized scheduler is a single Python event loop: every task
//    dispatch, result, and worker heartbeat costs loop time. When offered
//    load exceeds what the loop can serve, heartbeats miss their timeout,
//    workers are declared dead and restarted, their in-memory results are
//    lost, and the retry load compounds — the crash-and-hang behaviour the
//    paper reports at DV3-Large scale.
#pragma once

#include "exec/scheduler.h"
#include "util/units.h"

namespace hepvine::dd {

using util::Tick;

struct DaskTunables {
  /// Scheduler event-loop cost per task dispatch / per result. Coffea
  /// tasks carry the same fat serialized processor closures whether they
  /// ride Work Queue or Dask; pushing one through the single-threaded
  /// Python event loop costs tens of milliseconds, capping the scheduler
  /// at a few dozen tasks/second end to end — comfortable at tens of
  /// cores, binding near 300, hopeless at thousands (Figs 14a/14b).
  /// Parity with Work Queue's standard-task costs: both push the same
  /// serialized Coffea closures through one control process.
  Tick dispatch_cost = 25 * util::kMsec;
  Tick result_cost = 10 * util::kMsec;
  /// Client -> scheduler graph submission: the entire graph is serialized,
  /// shipped, and ingested by the scheduler's event loop before execution
  /// begins. At HEP scales (fat keys, 10^4-10^5 tasks) this stalls the
  /// loop for minutes — during which worker heartbeats go unserviced, the
  /// nanny declares workers dead, and the restart storm begins. This is
  /// the paper's "unable to execute these workflows at this scale".
  Tick graph_intake_cost_per_task = 5 * util::kMsec;
  /// Heartbeat processing cost per worker process.
  Tick heartbeat_cost = 300 * util::kUsec;
  Tick heartbeat_interval = 5 * util::kSec;
  /// A worker whose heartbeat is not serviced within this window is
  /// declared dead and restarted.
  Tick heartbeat_timeout = 60 * util::kSec;
  /// Delay before a killed/restarted worker process rejoins.
  Tick restart_delay = 15 * util::kSec;
  /// Same-node inter-process copy throughput (loopback/memcpy).
  double loopback_bytes_per_sec = 2.0e9;
  /// Give up after this many worker-process restarts per process slot
  /// (crash-loop detector).
  std::uint32_t max_restarts_per_proc = 10;
};

class DaskDistScheduler final : public exec::SchedulerBackend {
 public:
  DaskDistScheduler() = default;
  explicit DaskDistScheduler(DaskTunables tunables) : tun_(tunables) {}

  [[nodiscard]] std::string name() const override {
    return "dask.distributed";
  }

  exec::RunReport run(const dag::TaskGraph& graph, cluster::Cluster& cluster,
                      const exec::RunOptions& options) override;

 private:
  DaskTunables tun_;
};

}  // namespace hepvine::dd
