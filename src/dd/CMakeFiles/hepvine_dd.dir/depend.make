# Empty dependencies file for hepvine_dd.
# This may be replaced when dependencies are built.
