file(REMOVE_RECURSE
  "CMakeFiles/hepvine_dd.dir/dask_run.cpp.o"
  "CMakeFiles/hepvine_dd.dir/dask_run.cpp.o.d"
  "libhepvine_dd.a"
  "libhepvine_dd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hepvine_dd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
