file(REMOVE_RECURSE
  "libhepvine_dd.a"
)
