// Implementation of the Dask.Distributed baseline.

#include <algorithm>
#include <cassert>
#include <memory>
#include <utility>
#include <vector>

#include "dd/dask_distributed.h"
#include "exec/serial_resource.h"
#include "fault/backoff_ledger.h"
#include "fault/fault_injector.h"
#include "ha/factory.h"
#include "ha/snapshot.h"
#include "net/flow_gate.h"
#include "exec/task_state.h"
#include "exec/time_model.h"
#include "obs/attribution.h"
#include "obs/observer.h"
#include "obs/span.h"
#include "sim/rng.h"

namespace hepvine::dd {

namespace {

using cluster::WorkerId;
using data::FileId;
using dag::TaskId;
using exec::TaskState;
using util::Tick;

constexpr std::int32_t kNoProc = -1;

// vine-snapshot: state
class DaskRun {
 public:
  DaskRun(const dag::TaskGraph& graph, cluster::Cluster& cluster,
          const exec::RunOptions& options, const DaskTunables& tun)
      : graph_(graph),
        cluster_(cluster),
        engine_(cluster.engine()),
        options_(options),
        tun_(tun),
        table_(graph),
        rng_(options.seed, "dask-run"),
        scheduler_(cluster.engine()),
        obs_(obs::make_observation(options.observability)) {
    report_.scheduler = "dask.distributed";
    report_.tasks_total = graph.size();
    report_.transfers = metrics::TransferMatrix(cluster.endpoint_count());
    report_.cache = metrics::CacheTrace(cluster.worker_count());
    build_tables();
  }

  exec::RunReport execute() {
    for (TaskId sink : graph_.sinks()) {
      is_sink_[static_cast<std::size_t>(sink)] = true;
      ++sinks_outstanding_;
    }
    begin_observation();
    begin_fault_injection();
    begin_profile();
    // With the elastic factory on, only min_workers slots start matching;
    // the factory starts parked slots as queue depth demands.
    const std::uint32_t initial_workers =
        options_.ha.factory.enabled()
            ? std::max(options_.ha.factory.min_workers, 1U)
            : 0xffffffffU;
    cluster_.request_workers([this](WorkerId w) { on_node_up(w); },
                             [this](WorkerId w) { on_node_down(w); },
                             initial_workers);
    begin_factory();
    engine_.schedule_at(options_.max_sim_time, [this] {
      if (!finished_) fail_run("exceeded max simulated time");
    });
    // Graph submission: the scheduler loop ingests every task definition
    // before it can dispatch or service heartbeats.
    scheduler_.acquire(static_cast<Tick>(graph_.size()) *
                       tun_.graph_intake_cost_per_task);
    schedule_heartbeats();
    schedule_snapshot();

    while (!finished_ && engine_.step()) {
    }
    if (!finished_) fail_run("event queue drained before completion");

    if (injector_) {
      injector_->stop();
      report_.faults = injector_->stats();
    }
    if (factory_) {
      factory_->stop();
      report_.ha.factory_grow_events = factory_->grow_events();
      report_.ha.factory_shrink_events = factory_->shrink_events();
      report_.ha.workers_started = factory_->workers_started();
      report_.ha.workers_released = factory_->workers_released();
    }
    report_.worker_preemptions = cluster_.batch().preemptions();
    report_.task_attempts = total_attempts_;
    report_.task_failures = report_.trace.failures();
    report_.lineage_resets = lineage_resets_;
    if (report_.makespan > 0) {
      report_.manager_busy_fraction_legacy =
          std::min(1.0, static_cast<double>(scheduler_.total_busy_time()) /
                            static_cast<double>(report_.makespan));
    }
    finish_profile();
    if (obs_->enabled()) {
      obs_->txn().manager_end(engine_.now());
      obs_->finalize(engine_.now());
      report_.observation = obs_;
    }
    return std::move(report_);
  }

  [[nodiscard]] bool txn_on() const { return obs_->txn_enabled(); }
  [[nodiscard]] bool trace_on() const { return obs_->trace_enabled(); }

  void begin_observation() {
    if (!obs_->enabled()) return;

    if (txn_on()) {
      obs_->txn().manager_start(engine_.now());
      table_.set_ready_listener([this](TaskId t, Tick now) {
        obs_->txn().task_waiting(now, t, graph_.task(t).spec.category,
                                 table_.at(t).attempts);
      });
      for (TaskId t = 0; t < static_cast<TaskId>(graph_.size()); ++t) {
        const auto& st = table_.at(t);
        if (st.state == TaskState::kReady) {
          obs_->txn().task_waiting(st.ready_at, t,
                                   graph_.task(t).spec.category, st.attempts);
        }
      }
    }

    if (trace_on()) {
      obs_->trace().set_lane_name(
          static_cast<std::int32_t>(cluster_.manager_endpoint()),
          "scheduler");
      for (WorkerId w = 0;
           w < static_cast<WorkerId>(cluster_.worker_count()); ++w) {
        obs_->trace().set_lane_name(
            static_cast<std::int32_t>(cluster_.worker_endpoint(w)),
            "node " + std::to_string(w));
      }
      obs_->trace().set_lane_name(
          static_cast<std::int32_t>(cluster_.fs_endpoint()), "shared-fs");
    }

    if (obs_->perf_enabled()) {
      auto& stats = obs_->stats();
      stats.gauge("tasks.total",
                  [this] { return static_cast<double>(graph_.size()); });
      stats.gauge("tasks.done", [this] {
        return static_cast<double>(table_.done_count());
      });
      stats.gauge("tasks.ready", [this] {
        return static_cast<double>(table_.ready_count());
      });
      stats.gauge("tasks.inflight", [this] {
        return static_cast<double>(attempts_live_);
      });
      stats.gauge("procs.alive", [this] {
        std::size_t n = 0;
        for (const Proc& p : procs_) n += p.alive ? 1 : 0;
        return static_cast<double>(n);
      });
      stats.gauge("procs.busy", [this] {
        std::size_t n = 0;
        for (const Proc& p : procs_) n += (p.alive && p.busy) ? 1 : 0;
        return static_cast<double>(n);
      });
      stats.gauge("scheduler.backlog", [this] {
        return static_cast<double>(scheduler_.backlog());
      });
      stats.gauge("scheduler.busy_fraction", [this] {
        const Tick now = engine_.now();
        if (now <= 0) return 0.0;
        return std::min(1.0,
                        static_cast<double>(scheduler_.total_busy_time()) /
                            static_cast<double>(now));
      });
      stats.gauge("engine.events_executed", [this] {
        return static_cast<double>(engine_.executed());
      });
      stats.gauge("engine.events_pending", [this] {
        return static_cast<double>(engine_.pending());
      });
      cluster_.batch().register_stats(stats);
      cluster_.network().register_stats(stats);
      cluster_.fs().register_stats(stats);
      obs_->perf().bind(stats);
      schedule_perf_sample();
    }
  }

  void schedule_perf_sample() {
    engine_.schedule_after(obs_->config().perf_sample_interval, [this] {
      if (finished_) return;
      obs_->perf().sample(engine_.now(), obs_->stats());
      schedule_perf_sample();
    });
  }

 private:
  // --------------------------------------------------------------------
  // One single-core worker process. `proc = node * cores_per_node + k`.
  // --------------------------------------------------------------------
  struct Proc {
    bool alive = false;
    bool imports_loaded = false;
    bool busy = false;
    std::uint32_t incarnation = 0;
    std::uint32_t restarts = 0;
    std::uint64_t mem_used = 0;
    std::vector<FileId> holding;  // result keys resident in memory
    Tick last_heartbeat_served = 0;
    /// Residue clock for this process's serialization charges: repeated
    /// sub-tick argument pickles sum exactly instead of each rounding up.
    util::TickAccumulator ser;
  };

  struct FileInfo {
    std::uint64_t size = 0;
    data::FileKind kind = data::FileKind::kIntermediate;
    TaskId producer = dag::kInvalidTask;
    std::uint32_t consumers_left = 0;  // for memory release
    std::vector<std::int32_t> holders;  // procs holding the key
    bool at_client = false;
  };

  void build_tables() {
    const auto& catalog = graph_.catalog();
    files_.resize(catalog.size());
    for (const auto& f : catalog) {
      auto& info = files_[static_cast<std::size_t>(f.id)];
      info.size = f.size;
      info.kind = f.kind;
    }
    for (const auto& task : graph_.tasks()) {
      files_[static_cast<std::size_t>(task.output_file)].producer = task.id;
      files_[static_cast<std::size_t>(task.output_file)].consumers_left =
          static_cast<std::uint32_t>(task.dependents.size());
      for (TaskId dep : task.spec.deps) {
        (void)dep;
      }
    }
    cores_per_node_ = cluster_.spec().worker.cores;
    procs_.resize(static_cast<std::size_t>(cluster_.worker_count()) *
                  cores_per_node_);
    is_sink_.assign(graph_.size(), false);
    attempts_.clear();
    attempts_.resize(graph_.size());
    attempts_live_ = 0;
    running_on_.assign(procs_.size(), dag::kInvalidTask);
    sink_gathered_.assign(graph_.size(), 0);
    reset_counts_.assign(graph_.size(), 0);
    pending_crash_.assign(cluster_.worker_count(), false);
    pending_release_.assign(cluster_.worker_count(), false);
    mem_per_proc_ = cluster_.spec().worker.memory / cores_per_node_;
  }

  [[nodiscard]] WorkerId node_of(std::int32_t proc) const {
    return static_cast<WorkerId>(proc / static_cast<std::int32_t>(
                                            cores_per_node_));
  }
  [[nodiscard]] TaskId& running_on(std::int32_t pid) {
    return running_on_[static_cast<std::size_t>(pid)];
  }
  [[nodiscard]] Proc& proc(std::int32_t p) {
    return procs_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] FileInfo& file(FileId f) {
    return files_[static_cast<std::size_t>(f)];
  }

  // --------------------------------------------------------------------
  // Tokens (task attempt validity), as in the vine engine.
  // --------------------------------------------------------------------
  struct Token {
    TaskId task = 0;
    std::uint32_t attempt = 0;
  };
  [[nodiscard]] bool token_valid(const Token& t) const {
    const auto& st = table_.at(t.task);
    return st.attempts == t.attempt &&
           (st.state == TaskState::kDispatched ||
            st.state == TaskState::kRunning);
  }

  struct Attempt {
    std::int32_t proc = kNoProc;
    std::uint32_t staging_outstanding = 0;
    std::vector<dag::ValuePtr> inputs;
    /// Lifecycle phase boundaries for the profiler (obs/span.h); -1 until
    /// the attempt reaches the phase. span_exec_end is stamped at process
    /// exit in complete_exec (dd has no exec_finished_at equivalent).
    Tick span_ready = -1;
    Tick span_dispatched = -1;
    Tick span_staged = -1;
    Tick span_exec = -1;
    Tick span_compute = -1;
    Tick span_exec_end = -1;
  };
  /// Live attempts, dense by TaskId (presence = non-null slot). The
  /// unique_ptr indirection keeps Attempt addresses stable while other
  /// slots churn, so references held across staging callbacks stay valid;
  /// attempts_live_ tracks the population for gauges and the factory
  /// queue-depth hook.
  std::vector<std::unique_ptr<Attempt>> attempts_;
  // vine-snapshot: derived(count of non-null attempts_ slots)
  std::size_t attempts_live_ = 0;

  [[nodiscard]] Attempt& attempt_at(TaskId t) {
    auto& slot = attempts_[static_cast<std::size_t>(t)];
    assert(slot);
    return *slot;
  }
  [[nodiscard]] Attempt* attempt_find(TaskId t) {
    return attempts_[static_cast<std::size_t>(t)].get();
  }
  void attempt_erase(TaskId t) {
    attempts_[static_cast<std::size_t>(t)].reset();
    --attempts_live_;
  }

  /// Capture one finished attempt into the profiler span log (and the
  /// transaction log as a SPAN line), before the Attempt is erased.
  void record_attempt_span(TaskId t, std::int32_t pid, const Attempt& a,
                           bool failed) {
    obs::AttemptSpan s;
    s.task = t;
    s.attempt = table_.at(t).attempts;
    s.worker = pid == kNoProc ? -1 : static_cast<std::int32_t>(node_of(pid));
    s.ready_at = a.span_ready;
    s.dispatched_at = a.span_dispatched;
    s.staged_at = a.span_staged;
    s.exec_at = a.span_exec;
    s.compute_at = a.span_compute;
    s.exec_end_at = a.span_exec_end;
    s.retrieved_at = engine_.now();
    s.failed = failed;
    s.category = graph_.task(t).spec.category;
    if (txn_on()) {
      obs_->txn().span_attempt(engine_.now(), t, s.attempt, s.worker,
                               s.ready_at, s.dispatched_at, s.staged_at,
                               s.exec_at, s.compute_at, s.exec_end_at,
                               !failed, s.category);
    }
    report_.profile.add_attempt(std::move(s));
  }

  /// Arm the profiler: static cluster/DAG shape plus the wire-level flow
  /// span listener. Node up/down and attempt spans are recorded at their
  /// natural call sites.
  void begin_profile() {
    std::vector<std::uint32_t> cores;
    cores.reserve(cluster_.worker_count());
    for (WorkerId w = 0; w < static_cast<WorkerId>(cluster_.worker_count());
         ++w) {
      cores.push_back(cluster_.worker(w).cores);
    }
    report_.profile.set_worker_cores(std::move(cores));
    for (const auto& task : graph_.tasks()) {
      report_.profile.set_deps(task.id, task.spec.deps);
    }
    cluster_.network().set_span_listener(
        [this](Tick started, Tick ended, net::FlowId id, std::uint64_t bytes,
               std::uint64_t carried, char outcome) {
          obs::FlowSpan fs;
          fs.flow = id;
          fs.bytes = bytes;
          fs.carried = carried;
          fs.started_at = started;
          fs.ended_at = ended;
          fs.outcome = outcome;
          report_.profile.add_flow(fs);
        });
  }

  /// Seal the span log once the makespan is known and derive the
  /// attribution ledger, which supplies the reported busy fraction.
  void finish_profile() {
    report_.profile.set_manager(scheduler_.total_busy_time(),
                                scheduler_.operations());
    report_.profile.set_run(report_.makespan, report_.scheduler,
                            report_.success);
    const obs::AttributionLedger ledger = obs::attribute(report_.profile);
    report_.manager_busy_fraction = ledger.manager_busy_fraction;
    assert(ledger.identity_ok());
    if (trace_on() && obs_->config().trace_lifecycle_spans) {
      obs::emit_lifecycle_trace(report_.profile, obs_->trace());
    }
  }

  // --------------------------------------------------------------------
  // Node / process lifecycle.
  // --------------------------------------------------------------------
  void on_node_up(WorkerId w) {
    if (finished_) return;
    if (txn_on()) obs_->txn().worker_connection(engine_.now(), w);
    report_.profile.worker_up(engine_.now(), w);
    for (std::uint32_t k = 0; k < cores_per_node_; ++k) {
      auto& p = proc(proc_id(w, k));
      p = Proc{};
      p.alive = true;
      p.last_heartbeat_served = engine_.now();
    }
    pump();
  }

  void on_node_down(WorkerId w) {
    if (finished_) return;
    if (txn_on()) {
      const bool crashed = pending_crash_[static_cast<std::size_t>(w)];
      const bool released = pending_release_[static_cast<std::size_t>(w)];
      obs_->txn().worker_disconnection(
          engine_.now(), w,
          crashed ? "FAILURE" : released ? "RELEASED" : "PREEMPTED");
    }
    pending_crash_[static_cast<std::size_t>(w)] = false;
    pending_release_[static_cast<std::size_t>(w)] = false;
    report_.profile.worker_down(engine_.now(), w);
    for (std::uint32_t k = 0; k < cores_per_node_; ++k) {
      kill_proc(proc_id(w, k), /*restart=*/false);
      if (finished_) return;
    }
    report_.cache.mark_failure(static_cast<std::size_t>(w), engine_.now());
    pump();
  }

  [[nodiscard]] std::int32_t proc_id(WorkerId node, std::uint32_t k) const {
    return static_cast<std::int32_t>(node) *
               static_cast<std::int32_t>(cores_per_node_) +
           static_cast<std::int32_t>(k);
  }

  /// Kill one worker process, dropping its in-memory results and failing
  /// its running task. If `restart`, schedule a fresh incarnation.
  void kill_proc(std::int32_t pid, bool restart) {
    Proc& p = proc(pid);
    if (!p.alive) return;
    p.alive = false;
    p.incarnation += 1;
    p.restarts += 1;

    // Drop held results; lost keys are rediscovered lazily.
    for (FileId f : p.holding) {
      auto& hs = file(f).holders;
      hs.erase(std::remove(hs.begin(), hs.end(), pid), hs.end());
    }
    p.holding.clear();
    p.mem_used = 0;
    p.imports_loaded = false;

    // Fail a running task, if any.
    if (running_on(pid) != dag::kInvalidTask) {
      const TaskId t = running_on(pid);
      running_on(pid) = dag::kInvalidTask;
      fail_attempt(t);
      if (finished_) return;
    }
    p.busy = false;

    if (p.restarts > tun_.max_restarts_per_proc) {
      fail_run("worker process crash loop (proc " + std::to_string(pid) +
               " restarted " + std::to_string(p.restarts) + " times)");
      return;
    }
    if (restart) {
      report_.worker_crashes += 1;
      const std::uint32_t incarnation = p.incarnation;
      const WorkerId node = node_of(pid);
      engine_.schedule_after(tun_.restart_delay, [this, pid, incarnation,
                                                  node] {
        if (finished_) return;
        Proc& q = proc(pid);
        if (q.incarnation != incarnation || !cluster_.worker(node).alive) {
          return;
        }
        q.alive = true;
        q.busy = false;
        q.last_heartbeat_served = engine_.now();
        pump();
      });
    }
  }

  // --------------------------------------------------------------------
  // Fault injection. Node crashes route through the batch system like
  // vine's; "cache loss" drops in-memory result keys; only transfers with
  // a retry closure (dataset reads, peer key fetches, client pulls, sink
  // gathers) register as kill targets. Null injector_ = all no-ops.
  // --------------------------------------------------------------------
  void begin_fault_injection() {
    if (options_.faults.empty()) return;
    injector_ = std::make_unique<fault::FaultInjector>(
        cluster_, options_.faults, options_.fault_retry, obs_.get());
    fault::FaultInjector::Hooks hooks;
    hooks.crash_worker = [this](std::int32_t w) {
      if (finished_ || !cluster_.worker(w).alive) return false;
      if (pending_crash_[static_cast<std::size_t>(w)]) return false;
      report_.worker_crashes += 1;
      pending_crash_[static_cast<std::size_t>(w)] = true;
      cluster_.batch().force_preempt(static_cast<std::uint32_t>(w));
      return true;
    };
    hooks.lose_cached_file = [this](std::int32_t w, std::int64_t f) {
      return lose_held_key(w, static_cast<FileId>(f));
    };
    hooks.crash_manager = [this] {
      if (finished_) return false;
      on_manager_crash();
      return true;
    };
    injector_->arm(std::move(hooks));
  }

  /// Drop the in-memory result key `f` from every process on node `w`
  /// (w = kNoWorker: from every holder). Lost keys are rediscovered at the
  /// next precheck or fetch and lineage-reset their producer.
  std::size_t lose_held_key(WorkerId w, FileId f) {
    if (finished_ || f < 0 || static_cast<std::size_t>(f) >= files_.size()) {
      return 0;
    }
    auto& info = file(f);
    std::size_t lost = 0;
    for (auto it = info.holders.begin(); it != info.holders.end();) {
      const std::int32_t pid = *it;
      if (w != cluster::kNoWorker && node_of(pid) != w) {
        ++it;
        continue;
      }
      Proc& p = proc(pid);
      p.mem_used = info.size > p.mem_used ? 0 : p.mem_used - info.size;
      auto& hold = p.holding;
      hold.erase(std::remove(hold.begin(), hold.end(), f), hold.end());
      it = info.holders.erase(it);
      ++lost;
    }
    return lost;
  }

  void forget_flow(net::FlowId flow) {
    if (injector_ && flow != net::kInvalidFlow) {
      injector_->forget_transfer(flow);
    }
  }

  void lineage_reset(TaskId producer) {
    const std::size_t reset = table_.reset_lost(
        producer, engine_.now(), [this](TaskId p) {
          return key_available(graph_.task(p).output_file);
        });
    lineage_resets_ += reset;
    if (reset == 0) return;
    auto& count = reset_counts_[static_cast<std::size_t>(producer)];
    count += 1;
    const std::uint32_t limit = options_.fault_retry.poisoned_reset_threshold;
    if (limit > 0 && count > limit) {
      fail_run("task " + std::to_string(producer) +
               " poisoned: output lost " + std::to_string(count) +
               " times, exceeding the reset threshold of " +
               std::to_string(limit));
    }
  }

  // --------------------------------------------------------------------
  // Heartbeats: the scheduler loop must service every process's heartbeat
  // within the timeout, or the process is declared dead.
  // --------------------------------------------------------------------
  void schedule_heartbeats() {
    engine_.schedule_after(tun_.heartbeat_interval, [this] {
      if (finished_) return;
      for (std::int32_t pid = 0;
           pid < static_cast<std::int32_t>(procs_.size()); ++pid) {
        if (!proc(pid).alive) continue;
        const std::uint32_t incarnation = proc(pid).incarnation;
        scheduler_.acquire_then(tun_.heartbeat_cost, [this, pid,
                                                      incarnation] {
          if (finished_) return;
          Proc& p = proc(pid);
          if (!p.alive || p.incarnation != incarnation) return;
          p.last_heartbeat_served = engine_.now();
        });
      }
      // Check for timed-out processes (their heartbeats are stuck behind
      // the scheduler backlog).
      for (std::int32_t pid = 0;
           pid < static_cast<std::int32_t>(procs_.size()); ++pid) {
        Proc& p = proc(pid);
        if (p.alive && engine_.now() - p.last_heartbeat_served >
                           tun_.heartbeat_timeout) {
          kill_proc(pid, /*restart=*/true);
          if (finished_) return;
        }
      }
      schedule_heartbeats();
      sample_cache();
    });
  }

  void sample_cache() {
    // Report per-node in-memory result bytes as "cache" usage.
    const Tick now = engine_.now();
    for (WorkerId w = 0;
         w < static_cast<WorkerId>(cluster_.worker_count()); ++w) {
      std::uint64_t bytes = 0;
      for (std::uint32_t k = 0; k < cores_per_node_; ++k) {
        bytes += proc(proc_id(w, k)).mem_used;
      }
      if (cluster_.worker(w).alive) {
        report_.cache.sample(static_cast<std::size_t>(w), now, bytes);
      }
    }
  }

  // --------------------------------------------------------------------
  // Pump: dispatch ready tasks to free processes.
  // --------------------------------------------------------------------
  void pump() {
    if (finished_ || pumping_) return;
    pumping_ = true;
    while (!finished_) {
      const TaskId t = table_.peek_ready();
      if (t == dag::kInvalidTask) break;
      if (!precheck_inputs(t)) continue;
      const std::int32_t pid = choose_proc(t);
      if (pid == kNoProc) break;
      const TaskId popped = table_.pop_ready();
      assert(popped == t);
      (void)popped;
      dispatch(t, pid);
    }
    pumping_ = false;
  }

  bool precheck_inputs(TaskId t) {
    for (TaskId dep : graph_.task(t).spec.deps) {
      const FileId f = graph_.task(dep).output_file;
      if (table_.at(dep).state == TaskState::kDone && !key_available(f)) {
        lineage_reset(dep);
      }
    }
    return table_.at(t).state == TaskState::kReady;
  }

  [[nodiscard]] bool key_available(FileId f) {
    return file(f).at_client || !file(f).holders.empty();
  }

  std::int32_t choose_proc(TaskId t) {
    // Prefer a free process on a node already holding input bytes; fall
    // back to round-robin over free processes.
    const auto& task = graph_.task(t);
    std::int32_t best = kNoProc;
    std::uint64_t best_bytes = 0;
    for (TaskId dep : task.spec.deps) {
      const FileId f = graph_.task(dep).output_file;
      for (std::int32_t holder : file(f).holders) {
        const WorkerId node = node_of(holder);
        if (!cluster_.worker(node).alive) continue;
        for (std::uint32_t k = 0; k < cores_per_node_; ++k) {
          const std::int32_t cand = proc_id(node, k);
          Proc& p = proc(cand);
          if (!p.alive || p.busy) continue;
          const std::uint64_t bytes = file(f).size;
          if (best == kNoProc || bytes > best_bytes) {
            best = cand;
            best_bytes = bytes;
          }
          break;  // one free proc per node is enough to consider
        }
      }
    }
    if (best != kNoProc) return best;
    const auto n = static_cast<std::int32_t>(procs_.size());
    for (std::int32_t i = 0; i < n; ++i) {
      const std::int32_t pid = (rr_cursor_ + i) % n;
      Proc& p = proc(pid);
      if (p.alive && !p.busy && cluster_.worker(node_of(pid)).alive) {
        rr_cursor_ = (pid + 1) % n;
        return pid;
      }
    }
    return kNoProc;
  }

  // --------------------------------------------------------------------
  // Dispatch, staging, execution.
  // --------------------------------------------------------------------
  void dispatch(TaskId t, std::int32_t pid) {
    table_.mark_dispatched(t, node_of(pid), engine_.now());
    ++total_attempts_;
    Proc& p = proc(pid);
    p.busy = true;
    running_on(pid) = t;

    Attempt attempt;
    attempt.proc = pid;
    attempt.inputs = table_.gather_inputs(t);
    attempt.span_ready = table_.at(t).ready_at;
    attempt.span_dispatched = engine_.now();
    auto& slot = attempts_[static_cast<std::size_t>(t)];
    assert(!slot);
    slot = std::make_unique<Attempt>(std::move(attempt));
    ++attempts_live_;
    const Token token{t, table_.at(t).attempts};

    scheduler_.acquire_then(tun_.dispatch_cost, [this, token, pid] {
      if (!token_valid(token)) return;
      record_transfer(cluster_.manager_endpoint(),
                      cluster_.worker_endpoint(node_of(pid)),
                      options_.python.argument_bytes);
      engine_.schedule_after(cluster_.control_rtt() / 2, [this, token, pid] {
        begin_staging(token, pid);
      });
    });
  }

  void begin_staging(const Token& token, std::int32_t pid) {
    if (!token_valid(token)) return;
    const auto& task = graph_.task(token.task);
    auto& attempt = attempt_at(token.task);
    attempt.span_staged = engine_.now();

    std::vector<std::pair<FileId, bool>> needed;  // (file, is_dataset)
    for (FileId f : task.spec.input_files) needed.emplace_back(f, true);
    for (TaskId dep : task.spec.deps) {
      const FileId f = graph_.task(dep).output_file;
      // Already resident in this very process?
      if (std::find(file(f).holders.begin(), file(f).holders.end(), pid) ==
          file(f).holders.end()) {
        needed.emplace_back(f, false);
      }
    }
    attempt.staging_outstanding = static_cast<std::uint32_t>(needed.size());
    if (needed.empty()) {
      start_exec(token, pid);
      return;
    }
    for (const auto& [f, is_dataset] : needed) {
      fetch_key(f, is_dataset, pid, token);
    }
  }

  void fetch_key(FileId f, bool is_dataset, std::int32_t pid,
                 const Token& token) {
    const WorkerId dst_node = node_of(pid);
    auto arrival = [this, token, pid, f](bool ok) {
      if (!token_valid(token)) return;
      if (!ok) {
        // Lost key: fail this attempt and lineage-reset the producer.
        const TaskId t = token.task;
        fail_attempt_requeue(t);
        if (finished_) return;
        const TaskId producer = file(f).producer;
        if (producer != dag::kInvalidTask &&
            table_.at(producer).state == TaskState::kDone) {
          lineage_reset(producer);
        }
        pump();
        return;
      }
      auto& att = attempt_at(token.task);
      if (--att.staging_outstanding == 0) start_exec(token, pid);
    };

    if (is_dataset) {
      fs_gate_.submit([this, f, dst_node, arrival, pid,
                       token](net::FlowGate::SlotToken slot) {
        if (txn_on()) {
          obs_->txn().transfer_start(engine_.now(), cluster_.fs_endpoint(),
                                     cluster_.worker_endpoint(dst_node), f,
                                     file(f).size);
        }
        auto flow = std::make_shared<net::FlowId>(net::kInvalidFlow);
        *flow = cluster_.read_fs_to_worker(
            dst_node, file(f).size,
            [this, f, dst_node, arrival, flow, slot = std::move(slot)] {
              forget_flow(*flow);
              record_transfer(cluster_.fs_endpoint(),
                              cluster_.worker_endpoint(dst_node),
                              file(f).size);
              if (txn_on()) {
                obs_->txn().transfer_done(
                    engine_.now(), cluster_.fs_endpoint(),
                    cluster_.worker_endpoint(dst_node), f, file(f).size);
              }
              arrival(true);
            });
        offer_key_fetch(*flow, f, /*is_dataset=*/true, pid, token, arrival,
                        cluster_.fs_endpoint());
      });
      return;
    }

    // Fetch from a holder process (dask workers serve each other
    // directly). Same-node copies go over loopback.
    const auto& holders = file(f).holders;
    std::int32_t src = kNoProc;
    for (std::int32_t h : holders) {
      if (proc(h).alive) {
        src = h;
        break;
      }
    }
    if (src == kNoProc) {
      if (file(f).at_client) {
        auto flow = std::make_shared<net::FlowId>(net::kInvalidFlow);
        *flow = cluster_.send_manager_to_worker(
            dst_node, file(f).size, cluster_.control_rtt() / 2,
            [this, f, dst_node, arrival, flow] {
              forget_flow(*flow);
              record_transfer(cluster_.manager_endpoint(),
                              cluster_.worker_endpoint(dst_node),
                              file(f).size);
              arrival(true);
            });
        offer_key_fetch(*flow, f, /*is_dataset=*/false, pid, token, arrival,
                        cluster_.manager_endpoint());
      } else {
        arrival(false);
      }
      return;
    }
    const WorkerId src_node = node_of(src);
    if (src_node == dst_node) {
      const Tick copy = util::transfer_time(
          file(f).size, tun_.loopback_bytes_per_sec);
      engine_.schedule_after(copy, [arrival] { arrival(true); });
      return;
    }
    if (txn_on()) {
      obs_->txn().transfer_start(engine_.now(),
                                 cluster_.worker_endpoint(src_node),
                                 cluster_.worker_endpoint(dst_node), f,
                                 file(f).size);
    }
    const Tick t0 = engine_.now();
    auto flow = std::make_shared<net::FlowId>(net::kInvalidFlow);
    *flow = cluster_.send_peer(
        src_node, dst_node, file(f).size, cluster_.control_rtt() / 2,
        [this, f, src_node, dst_node, arrival, t0, flow] {
          forget_flow(*flow);
          record_transfer(cluster_.worker_endpoint(src_node),
                          cluster_.worker_endpoint(dst_node), file(f).size);
          if (txn_on()) {
            obs_->txn().transfer_done(
                engine_.now(), cluster_.worker_endpoint(src_node),
                cluster_.worker_endpoint(dst_node), f, file(f).size);
          }
          if (trace_on()) {
            obs_->trace().add_flow(
                static_cast<std::int32_t>(cluster_.worker_endpoint(src_node)),
                static_cast<std::int32_t>(cluster_.worker_endpoint(dst_node)),
                "peer key " + std::to_string(f), t0, engine_.now());
          }
          arrival(true);
        });
    offer_key_fetch(*flow, f, /*is_dataset=*/false, pid, token, arrival,
                    cluster_.worker_endpoint(src_node));
  }

  /// Register a key/dataset fetch as a kill target. On kill: one unit of
  /// the attempt's transfer-retry budget is spent and the fetch restarts
  /// from scratch after backoff — a peer source that was itself preempted
  /// in the meantime is re-resolved, datasets re-read the durable FS. Past
  /// the budget the attempt takes the lost-input path.
  void offer_key_fetch(net::FlowId flow_id, FileId f, bool is_dataset,
                       std::int32_t pid, const Token& token,
                       std::function<void(bool)> arrival,
                       std::size_t src_ep) {
    if (!injector_ || flow_id == net::kInvalidFlow) return;
    injector_->offer_transfer(
        flow_id, file(f).size,
        [this, f, is_dataset, pid, token, arrival = std::move(arrival),
         src_ep] {
          if (txn_on()) {
            obs_->txn().transfer_failed(
                engine_.now(), src_ep,
                cluster_.worker_endpoint(node_of(pid)), f, file(f).size);
          }
          if (!token_valid(token)) return;
          // Budget check: the Nth kill (N = max_transfer_retries)
          // exhausts it — N-1 backoff re-fetches happen before the
          // attempt takes the lost-input path.
          const std::uint32_t kills =
              transfer_backoff_.next_attempt(token.task);
          if (kills >= options_.fault_retry.max_transfer_retries) {
            injector_->record_giveup(
                "task=" + std::to_string(token.task) + " file=" +
                std::to_string(f) + " kills=" + std::to_string(kills));
            arrival(false);
            return;
          }
          const Tick delay = injector_->backoff_delay(kills);
          engine_.schedule_after(delay, [this, f, is_dataset, pid, token] {
            if (token_valid(token)) fetch_key(f, is_dataset, pid, token);
          });
        });
  }

  void start_exec(const Token& token, std::int32_t pid) {
    if (!token_valid(token)) return;
    // All inputs staged: the transfer episode (if any) ended in success.
    transfer_backoff_.reset(token.task);
    table_.mark_running(token.task, engine_.now());
    if (txn_on()) {
      obs_->txn().task_running(engine_.now(), token.task, node_of(pid));
    }
    attempt_at(token.task).span_exec = engine_.now();
    const auto& task = graph_.task(token.task);
    const auto& node = cluster_.worker(node_of(pid));
    Proc& p = proc(pid);

    // Charge the argument pickle through the process's residue clock so
    // back-to-back sub-tick tuples sum exactly (util::TickAccumulator).
    const Tick pre = options_.python.serialize_time_acc(
        options_.python.argument_bytes, p.ser);
    const Tick compute = exec::modeled_exec_ticks(
        task, node.effective_speed(), options_.exec_time_jitter, rng_);

    if (!p.imports_loaded) {
      // First task in this process: cold interpreter plus the full import
      // stack. Dask workers have no TaskVine-style environment
      // distribution — the software stack lives on the shared filesystem,
      // so every process's imports hit the metadata server and data path
      // (a 300-process start is an import storm).
      p.imports_loaded = true;
      const std::uint32_t incarnation = p.incarnation;
      engine_.schedule_after(
          pre + options_.python.interpreter_startup,
          [this, token, pid, incarnation, compute] {
            if (!token_valid(token)) return;
            if (proc(pid).incarnation != incarnation) return;
            cluster_.fs().metadata_ops(
                options_.imports.total_metadata_ops(),
                [this, token, pid, incarnation, compute] {
                  if (!token_valid(token)) return;
                  if (proc(pid).incarnation != incarnation) return;
                  fs_gate_.submit([this, token, pid, incarnation, compute](
                                      net::FlowGate::SlotToken slot) {
                    if (!token_valid(token)) return;
                    const std::uint64_t code =
                        options_.imports.total_code_bytes();
                    const WorkerId node_id = node_of(pid);
                    cluster_.read_fs_to_worker(
                        node_id, code,
                        [this, token, pid, incarnation, compute, code,
                         node_id, slot = std::move(slot)] {
                          if (!token_valid(token)) return;
                          if (proc(pid).incarnation != incarnation) return;
                          record_transfer(cluster_.fs_endpoint(),
                                          cluster_.worker_endpoint(node_id),
                                          code);
                          const Tick cpu =
                              options_.imports.total_cpu_cost();
                          attempt_at(token.task).span_compute =
                              engine_.now() + cpu;
                          engine_.schedule_after(
                              cpu + compute,
                              [this, token, pid] {
                                complete_exec(token, pid);
                              });
                        });
                  });
                });
          });
      return;
    }

    attempt_at(token.task).span_compute = engine_.now() + pre;
    engine_.schedule_after(pre + compute, [this, token, pid] {
      complete_exec(token, pid);
    });
  }

  void complete_exec(const Token& token, std::int32_t pid) {
    if (!token_valid(token)) return;
    const TaskId t = token.task;
    const auto& task = graph_.task(t);
    Proc& p = proc(pid);

    // Hold the result key in process memory; exceeding the memory slice
    // kills the process (nanny behaviour).
    p.mem_used += task.spec.output_bytes;
    if (p.mem_used > mem_per_proc_) {
      kill_proc(pid, /*restart=*/true);
      pump();
      return;
    }
    p.holding.push_back(task.output_file);
    file(task.output_file).holders.push_back(pid);

    auto& attempt = attempt_at(t);
    attempt.span_exec_end = engine_.now();
    dag::ValuePtr value =
        task.spec.fn ? task.spec.fn(attempt.inputs) : nullptr;

    p.busy = false;
    running_on(pid) = dag::kInvalidTask;

    scheduler_.acquire_then(
        tun_.result_cost + cluster_.control_rtt() / 2,
        [this, token, pid, value = std::move(value)]() mutable {
          finalize_task(token, pid, std::move(value));
        });
  }

  void finalize_task(const Token& token, std::int32_t pid,
                     dag::ValuePtr value) {
    if (!token_valid(token)) return;
    const TaskId t = token.task;

    const auto& st = table_.at(t);
    metrics::TaskRecord rec;
    rec.task_id = t;
    rec.worker = node_of(pid);
    rec.ready_at = st.ready_at;
    rec.dispatched_at = st.dispatched_at;
    rec.started_at = st.started_at;
    rec.finished_at = engine_.now();
    rec.category = graph_.task(t).spec.category;
    if (txn_on()) obs_->txn().task_retrieved(engine_.now(), t, "SUCCESS");
    if (trace_on() && rec.started_at > 0) {
      obs_->trace().add_span(
          static_cast<std::int32_t>(
              cluster_.worker_endpoint(node_of(pid))),
          rec.category, rec.category, rec.started_at,
          rec.finished_at - rec.started_at,
          "{\"task\":" + std::to_string(t) + ",\"proc\":" +
              std::to_string(pid) + "}");
    }
    report_.trace.add(std::move(rec));
    record_attempt_span(t, pid, attempt_at(t), /*failed=*/false);

    table_.mark_done(t, std::move(value), engine_.now());
    attempt_erase(t);
    if (txn_on()) obs_->txn().task_done(engine_.now(), t, "SUCCESS");

    // Release dependency keys whose consumers are all finished.
    for (TaskId dep : graph_.task(t).spec.deps) {
      release_consumer(graph_.task(dep).output_file);
    }

    if (is_sink_[static_cast<std::size_t>(t)]) {
      gather_sink(t, node_of(pid));
    }
    check_completion();
    pump();
  }

  void release_consumer(FileId f) {
    auto& info = file(f);
    if (info.consumers_left > 0 && --info.consumers_left == 0) {
      for (std::int32_t holder : info.holders) {
        Proc& p = proc(holder);
        p.mem_used = info.size > p.mem_used ? 0 : p.mem_used - info.size;
        auto& hold = p.holding;
        hold.erase(std::remove(hold.begin(), hold.end(), f), hold.end());
      }
      info.holders.clear();
      // Lineage can no longer recover this key from memory, but all its
      // consumers are done, so nothing will ask for it (releasing is what
      // real Dask does).
    }
  }

  void gather_sink(TaskId t, WorkerId node) {
    const FileId f = graph_.task(t).output_file;
    mgr_gate_.submit([this, t, f, node](net::FlowGate::SlotToken slot) {
      if (txn_on()) {
        obs_->txn().transfer_start(engine_.now(),
                                   cluster_.worker_endpoint(node),
                                   cluster_.manager_endpoint(), f,
                                   file(f).size);
      }
      auto flow = std::make_shared<net::FlowId>(net::kInvalidFlow);
      *flow = cluster_.send_worker_to_manager(
          node, file(f).size, cluster_.control_rtt() / 2,
          [this, t, node, flow, slot = std::move(slot)] {
            forget_flow(*flow);
            record_transfer(cluster_.worker_endpoint(node),
                            cluster_.manager_endpoint(),
                            file(graph_.task(t).output_file).size);
            if (txn_on()) {
              obs_->txn().transfer_done(
                  engine_.now(), cluster_.worker_endpoint(node),
                  cluster_.manager_endpoint(), graph_.task(t).output_file,
                  file(graph_.task(t).output_file).size);
            }
            file(graph_.task(t).output_file).at_client = true;
            if (!sink_gathered_[static_cast<std::size_t>(t)]) {
              sink_gathered_[static_cast<std::size_t>(t)] = 1;
              sink_backoff_.reset(t);  // gather episode over
              --sinks_outstanding_;
            }
            check_completion();
          });
      offer_sink_gather(*flow, t, node);
    });
  }

  /// Killed sink gathers retry from the same node after backoff, without a
  /// cap: the result key stays in the source process's memory, so the
  /// stream can simply re-open.
  void offer_sink_gather(net::FlowId flow_id, TaskId t, WorkerId node) {
    if (!injector_ || flow_id == net::kInvalidFlow) return;
    const FileId f = graph_.task(t).output_file;
    injector_->offer_transfer(flow_id, file(f).size, [this, t, node, f] {
      if (txn_on()) {
        obs_->txn().transfer_failed(engine_.now(),
                                    cluster_.worker_endpoint(node),
                                    cluster_.manager_endpoint(), f,
                                    file(f).size);
      }
      const Tick delay =
          injector_->backoff_delay(sink_backoff_.next_attempt(t));
      engine_.schedule_after(delay, [this, t, node] {
        if (!finished_ && !sink_gathered_[static_cast<std::size_t>(t)]) {
          gather_sink(t, node);
        }
      });
    });
  }

  void check_completion() {
    if (finished_) return;
    if (table_.all_done() && sinks_outstanding_ == 0) {
      finished_ = true;
      report_.success = true;
      report_.makespan = engine_.now();
      for (TaskId sink : graph_.sinks()) {
        report_.results[sink] = table_.at(sink).result;
      }
      cluster_.batch().drain();
    }
  }

  // --------------------------------------------------------------------
  // Manager HA: crash handling, checkpointing, elastic factory. Mirrors
  // the vine engine's scheme (vine_run.cpp); the snapshot schema differs
  // because dd's state lives in process memory, not worker disks.
  // --------------------------------------------------------------------
  void on_manager_crash() {
    report_.ha.manager_crashed = true;
    report_.ha.crash_tick = engine_.now();
    fail_run("manager crashed (injected manager_crash fault)");
  }

  void schedule_snapshot() {
    if (!options_.ha.snapshots_enabled()) return;
    engine_.schedule_after(options_.ha.snapshot_interval, [this] {
      if (finished_) return;
      take_snapshot();
      schedule_snapshot();
    });
  }

  void take_snapshot() {
    ha::SnapshotBuilder b;

    b.section("run");
    b.field("tasks_total", graph_.size());
    b.field("tasks_done", table_.done_count());
    b.field("task_attempts", total_attempts_);
    b.field("lineage_resets", lineage_resets_);
    b.field("sinks_outstanding", sinks_outstanding_);
    b.field("worker_crashes", report_.worker_crashes);
    // The process round-robin cursor is real scheduler state: two
    // schedulers that agree on everything else but disagree on the cursor
    // assign the next task to different processes.
    b.field_i("rr_cursor", rr_cursor_);

    b.section("tasks");
    for (TaskId t = 0; t < static_cast<TaskId>(graph_.size()); ++t) {
      const auto& st = table_.at(t);
      b.field_s("t" + std::to_string(t),
                std::to_string(static_cast<int>(st.state)) + "/" +
                    std::to_string(st.attempts) + "/" +
                    std::to_string(st.worker));
    }
    // Sparse task-keyed state: per-producer lineage-reset counts (the
    // poisoned-task detector's memory) and sink-gather completion bits.
    for (TaskId t = 0; t < static_cast<TaskId>(graph_.size()); ++t) {
      const std::uint32_t n = reset_counts_[static_cast<std::size_t>(t)];
      if (n != 0) b.field("r" + std::to_string(t), n);
    }
    for (TaskId t = 0; t < static_cast<TaskId>(graph_.size()); ++t) {
      if (is_sink_[static_cast<std::size_t>(t)] &&
          sink_gathered_[static_cast<std::size_t>(t)] != 0) {
        b.field("s" + std::to_string(t), 1);
      }
    }

    b.section("keys");
    for (FileId f = 0; f < static_cast<FileId>(files_.size()); ++f) {
      const auto& info = files_[static_cast<std::size_t>(f)];
      if (!info.at_client && info.holders.empty() &&
          info.consumers_left == 0) {
        continue;
      }
      std::string v = info.at_client ? "c" : "-";
      v += "/";
      std::vector<std::int32_t> holders = info.holders;
      std::sort(holders.begin(), holders.end());
      for (std::size_t i = 0; i < holders.size(); ++i) {
        if (i) v += ",";
        v += std::to_string(holders[i]);
      }
      v += "/" + std::to_string(info.consumers_left);
      b.field_s("f" + std::to_string(f), v);
    }

    b.section("procs");
    for (std::size_t pid = 0; pid < procs_.size(); ++pid) {
      const Proc& p = procs_[pid];
      if (!p.alive) continue;
      b.field_s("p" + std::to_string(pid),
                "inc=" + std::to_string(p.incarnation) +
                    " busy=" + std::to_string(p.busy ? 1 : 0) +
                    " mem=" + std::to_string(p.mem_used) +
                    " held=" + std::to_string(p.holding.size()) +
                    " ser=" + std::to_string(p.ser.bytes) + ":" +
                    std::to_string(p.ser.charged));
    }

    b.section("backoff");
    transfer_backoff_.for_each([&b](TaskId t, std::uint32_t n) {
      b.field("transfer." + std::to_string(t), n);
    });
    sink_backoff_.for_each([&b](TaskId t, std::uint32_t n) {
      b.field("sink." + std::to_string(t), n);
    });

    // Unconditional (zeros without an injector): a run whose only fault
    // was the manager crash itself must snapshot byte-identically to its
    // crash-stripped recovery rerun, which has no injector at all.
    {
      const fault::InjectionStats zero;
      const fault::InjectionStats& fs =
          injector_ ? injector_->stats() : zero;
      b.section("injector");
      b.field("faults_injected", fs.faults_injected);
      b.field("worker_crashes", fs.worker_crashes);
      b.field("cache_losses", fs.cache_losses);
      b.field("cache_loss_noops", fs.cache_loss_noops);
      b.field("transfers_killed", fs.transfers_killed);
      b.field("fs_degradations", fs.fs_degradations);
      b.field("stragglers", fs.stragglers);
      b.field("manager_crashes", fs.manager_crashes);
      b.field("transfer_retries", fs.transfer_retries);
      b.field("transfer_giveups", fs.transfer_giveups);
      b.field("backoff_wait", static_cast<std::uint64_t>(fs.backoff_wait));
      b.field("fs_degraded_time",
              static_cast<std::uint64_t>(fs.fs_degraded_time));
    }

    b.section("rng");
    b.field_rng("dask_run", rng_.state());

    ha::SnapshotRecord rec = b.finish(engine_.now(), snapshot_seq_++);
    scheduler_.acquire(options_.ha.snapshot_cost(rec.bytes));
    if (txn_on()) {
      obs_->txn().snapshot_write(engine_.now(), rec.seq, rec.bytes,
                                 rec.digest);
    }
    report_.ha.snapshots.push_back(std::move(rec));
  }

  void begin_factory() {
    if (!options_.ha.factory.enabled()) return;
    ha::Factory::Hooks hooks;
    hooks.queue_depth = [this]() -> std::size_t {
      return table_.ready_count() + attempts_live_;
    };
    hooks.connected_workers = [this] { return cluster_.alive_workers(); };
    hooks.grow = [this](std::uint32_t n) {
      return cluster_.batch().start_slots(n);
    };
    hooks.shrink = [this](std::uint32_t n) {
      return release_idle_nodes(n);
    };
    factory_ = std::make_unique<ha::Factory>(engine_, options_.ha.factory,
                                             std::move(hooks));
    factory_->start();
  }

  /// Factory shrink: release nodes whose processes are all idle and hold
  /// no result keys (releasing a holder would force lineage resets).
  /// Highest ids go first, keeping the stable low-id core of the pool.
  std::uint32_t release_idle_nodes(std::uint32_t n) {
    std::uint32_t released = 0;
    for (WorkerId w = static_cast<WorkerId>(cluster_.worker_count()) - 1;
         w >= 0 && released < n; --w) {
      if (!cluster_.worker(w).alive) continue;
      bool idle = true;
      for (std::uint32_t k = 0; k < cores_per_node_ && idle; ++k) {
        const Proc& p = procs_[static_cast<std::size_t>(proc_id(w, k))];
        if (p.alive && (p.busy || !p.holding.empty())) idle = false;
      }
      if (!idle) continue;
      pending_release_[static_cast<std::size_t>(w)] = true;
      if (cluster_.batch().release_slot(static_cast<std::uint32_t>(w))) {
        ++released;
      } else {
        pending_release_[static_cast<std::size_t>(w)] = false;
      }
    }
    return released;
  }

  // --------------------------------------------------------------------
  // Failures.
  // --------------------------------------------------------------------
  void fail_attempt(TaskId t) { fail_attempt_requeue(t); }

  void fail_attempt_requeue(TaskId t) {
    const auto& st = table_.at(t);
    if (st.state != TaskState::kDispatched &&
        st.state != TaskState::kRunning) {
      return;
    }
    metrics::TaskRecord rec;
    rec.task_id = t;
    rec.worker = st.worker;
    rec.ready_at = st.ready_at;
    rec.dispatched_at = st.dispatched_at;
    rec.started_at = st.state == TaskState::kRunning ? st.started_at
                                                     : st.dispatched_at;
    rec.finished_at = engine_.now();
    rec.failed = true;
    rec.category = graph_.task(t).spec.category;
    if (txn_on()) obs_->txn().task_retrieved(engine_.now(), t, "FAILURE");
    report_.trace.add(std::move(rec));

    if (Attempt* a = attempt_find(t)) {
      const std::int32_t pid = a->proc;
      if (pid != kNoProc) {
        running_on(pid) = dag::kInvalidTask;
        if (proc(pid).alive) proc(pid).busy = false;
      }
      record_attempt_span(t, pid, *a, /*failed=*/true);
      attempt_erase(t);
    }
    if (table_.at(t).attempts >= options_.max_task_retries) {
      fail_run("task " + std::to_string(t) + " exceeded retry limit");
      return;
    }
    table_.requeue(t, engine_.now());
  }

  void fail_run(std::string reason) {
    if (finished_) return;
    finished_ = true;
    report_.success = false;
    report_.failure_reason = std::move(reason);
    report_.makespan = engine_.now();
    cluster_.batch().drain();
  }

  void record_transfer(std::size_t src, std::size_t dst,
                       std::uint64_t bytes) {
    report_.transfers.record(src, dst, bytes);
  }

  // --------------------------------------------------------------------
  const dag::TaskGraph& graph_;
  cluster::Cluster& cluster_;
  sim::Engine& engine_;
  const exec::RunOptions options_;
  const DaskTunables tun_;

  exec::TaskStateTable table_;
  sim::Rng rng_;
  exec::SerialResource scheduler_;
  // vine-snapshot: derived(occupancy implied by the snapshot flow sections)
  net::FlowGate mgr_gate_{64};
  // vine-snapshot: derived(occupancy implied by the snapshot flow sections)
  net::FlowGate fs_gate_{256};
  std::vector<Proc> procs_;
  std::vector<FileInfo> files_;
  /// Task running on each process slot, dense by pid; kInvalidTask when
  /// the slot is idle.
  // vine-snapshot: derived(inverse of the per-task worker column in the tasks section)
  std::vector<TaskId> running_on_;
  /// Sink gather completion, dense by TaskId (only sink ids are ever set).
  std::vector<char> sink_gathered_;
  // vine-snapshot: derived(graph property, rebuilt at startup)
  std::vector<bool> is_sink_;

  std::shared_ptr<obs::RunObservation> obs_;

  // Fault-injection state (null/empty when RunOptions::faults is empty).
  // Backoff ledgers reset on success, so escalation counts consecutive
  // failures of the current episode, never a task's lifetime kills.
  std::unique_ptr<fault::FaultInjector> injector_;
  // vine-snapshot: derived(intent flag; the disconnect it labels is an event replay reproduces)
  std::vector<bool> pending_crash_;
  // vine-snapshot: derived(intent flag; the disconnect it labels is an event replay reproduces)
  std::vector<bool> pending_release_;
  std::vector<std::uint32_t> reset_counts_;
  fault::BackoffLedger<TaskId> transfer_backoff_;
  fault::BackoffLedger<TaskId> sink_backoff_;
  std::size_t lineage_resets_ = 0;

  // Manager-HA state (see vine_run.cpp for the scheme; dd mirrors it).
  // vine-snapshot: derived(sizing re-derived from queue depth each poll)
  std::unique_ptr<ha::Factory> factory_;
  std::uint64_t snapshot_seq_ = 0;

  exec::RunReport report_;
  // vine-snapshot: derived(fixed at startup from cluster spec)
  std::uint32_t cores_per_node_ = 1;
  // vine-snapshot: derived(fixed at startup from cluster spec)
  std::uint64_t mem_per_proc_ = 0;
  std::size_t sinks_outstanding_ = 0;
  std::size_t total_attempts_ = 0;
  std::int32_t rr_cursor_ = 0;
  // vine-snapshot: derived(re-entrancy latch, always false between events)
  bool pumping_ = false;
  // vine-snapshot: derived(teardown latch; no snapshots are taken after finish)
  bool finished_ = false;
};

}  // namespace

exec::RunReport DaskDistScheduler::run(const dag::TaskGraph& graph,
                                       cluster::Cluster& cluster,
                                       const exec::RunOptions& options) {
  DaskRun run(graph, cluster, options, tun_);
  return run.execute();
}

}  // namespace hepvine::dd
