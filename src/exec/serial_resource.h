// Single-server FIFO resource modeled as a virtual queue ("busy until").
//
// Used for the manager's control loop: dispatching a task, handling a
// result, and brokering a peer transfer each occupy the single manager
// thread for some cost. When the offered load exceeds what one thread can
// serve, the queue grows — exactly the dispatch bottleneck that starves
// 200-worker Stack 3 in the paper's Fig 13.
#pragma once

#include <algorithm>

#include "sim/engine.h"
#include "util/units.h"

namespace hepvine::exec {

using util::Tick;

class SerialResource {
 public:
  explicit SerialResource(sim::Engine& engine) : engine_(engine) {}

  /// Enqueue `cost` of work; returns the absolute time it completes.
  Tick acquire(Tick cost) {
    const Tick start = std::max(engine_.now(), busy_until_);
    busy_until_ = start + cost;
    busy_time_ += cost;
    ++operations_;
    return busy_until_;
  }

  /// Enqueue work and invoke `fn` when it completes.
  void acquire_then(Tick cost, sim::Engine::Callback fn) {
    engine_.schedule_at(acquire(cost), std::move(fn));
  }

  /// Current backlog (how far busy_until is past now).
  [[nodiscard]] Tick backlog() const {
    return std::max<Tick>(0, busy_until_ - engine_.now());
  }

  [[nodiscard]] Tick total_busy_time() const noexcept { return busy_time_; }
  [[nodiscard]] std::uint64_t operations() const noexcept {
    return operations_;
  }

 private:
  sim::Engine& engine_;
  Tick busy_until_ = 0;
  Tick busy_time_ = 0;
  std::uint64_t operations_ = 0;
};

}  // namespace hepvine::exec
