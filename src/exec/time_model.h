// Modeled task execution time: declared CPU-seconds scaled by the node's
// speed factor, with bounded multiplicative jitter for runtime variance.
#pragma once

#include "dag/task_graph.h"
#include "sim/rng.h"
#include "util/units.h"

namespace hepvine::exec {

[[nodiscard]] inline util::Tick modeled_exec_ticks(const dag::Task& task,
                                                   double node_speed,
                                                   double jitter_frac,
                                                   sim::Rng& rng) {
  double seconds = task.spec.cpu_seconds / (node_speed > 0 ? node_speed : 1.0);
  if (jitter_frac > 0) {
    seconds *= rng.uniform(1.0 - jitter_frac, 1.0 + jitter_frac);
  }
  const util::Tick t = util::seconds(seconds);
  return t > 0 ? t : 1;
}

}  // namespace hepvine::exec
