#include "exec/scheduler.h"

namespace hepvine::exec {

const char* to_string(ExecMode mode) {
  switch (mode) {
    case ExecMode::kStandardTasks:
      return "standard-tasks";
    case ExecMode::kFunctionCalls:
      return "function-calls";
  }
  return "unknown";
}

}  // namespace hepvine::exec
