// Human-readable and CSV renderings of a RunReport — one place for
// examples, benches, and downstream users to print consistent summaries.
#pragma once

#include <string>

#include "exec/scheduler.h"

namespace hepvine::exec {

/// Multi-line human-readable summary of one run.
[[nodiscard]] std::string summarize(const RunReport& report);

/// One CSV row (plus a static header) for run-comparison tables.
[[nodiscard]] std::string csv_header();
[[nodiscard]] std::string csv_row(const RunReport& report);

}  // namespace hepvine::exec
