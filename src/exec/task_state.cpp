#include "exec/task_state.h"

#include <cassert>
#include <utility>

namespace hepvine::exec {

TaskStateTable::TaskStateTable(const dag::TaskGraph& graph,
                               bool depth_priority)
    : graph_(graph) {
  states_.resize(graph.size());
  depths_.resize(graph.size(), 0);
  for (const auto& task : graph.tasks()) {
    std::uint32_t depth = 0;
    for (dag::TaskId dep : task.spec.deps) {
      depth = std::max(depth, depths_[static_cast<std::size_t>(dep)] + 1);
    }
    depths_[static_cast<std::size_t>(task.id)] = depth;
  }
  if (!depth_priority) {
    // Uniform depths degrade the ready queue to pure FIFO.
    std::fill(depths_.begin(), depths_.end(), 0u);
  }
  for (const auto& task : graph.tasks()) {
    auto& st = states_[static_cast<std::size_t>(task.id)];
    st.deps_remaining = static_cast<std::uint32_t>(task.spec.deps.size());
    if (st.deps_remaining == 0) {
      enqueue_ready(task.id, 0);
    }
  }
}

void TaskStateTable::enqueue_ready(dag::TaskId id, Tick now) {
  auto& st = states_[static_cast<std::size_t>(id)];
  st.state = TaskState::kReady;
  st.ready_at = now;
  ready_queue_.push(
      ReadyEntry{depths_[static_cast<std::size_t>(id)], ready_seq_++, id});
  if (on_ready_) on_ready_(id, now);
}

dag::TaskId TaskStateTable::pop_ready() {
  while (!ready_queue_.empty()) {
    const dag::TaskId id = ready_queue_.top().id;
    ready_queue_.pop();
    if (states_[static_cast<std::size_t>(id)].state == TaskState::kReady) {
      return id;
    }
    // Stale entry (task was demoted or dispatched via another path); skip.
  }
  return dag::kInvalidTask;
}

dag::TaskId TaskStateTable::peek_ready() {
  while (!ready_queue_.empty()) {
    const dag::TaskId id = ready_queue_.top().id;
    if (states_[static_cast<std::size_t>(id)].state == TaskState::kReady) {
      return id;
    }
    ready_queue_.pop();
  }
  return dag::kInvalidTask;
}

void TaskStateTable::mark_dispatched(dag::TaskId id, std::int32_t worker,
                                     Tick now) {
  auto& st = states_[static_cast<std::size_t>(id)];
  assert(st.state == TaskState::kReady);
  st.state = TaskState::kDispatched;
  st.worker = worker;
  st.dispatched_at = now;
  st.attempts += 1;
}

void TaskStateTable::mark_running(dag::TaskId id, Tick now) {
  auto& st = states_[static_cast<std::size_t>(id)];
  assert(st.state == TaskState::kDispatched);
  st.state = TaskState::kRunning;
  st.started_at = now;
}

void TaskStateTable::mark_done(dag::TaskId id, dag::ValuePtr result,
                               Tick now) {
  auto& st = states_[static_cast<std::size_t>(id)];
  assert(st.state == TaskState::kRunning ||
         st.state == TaskState::kDispatched);
  st.state = TaskState::kDone;
  st.result = std::move(result);
  ++done_count_;
  for (dag::TaskId dep_id : graph_.task(id).dependents) {
    auto& dep = states_[static_cast<std::size_t>(dep_id)];
    if (dep.state != TaskState::kWaiting) continue;
    assert(dep.deps_remaining > 0);
    if (--dep.deps_remaining == 0) {
      enqueue_ready(dep_id, now);
    }
  }
}

void TaskStateTable::requeue(dag::TaskId id, Tick now) {
  auto& st = states_[static_cast<std::size_t>(id)];
  assert(st.state == TaskState::kDispatched ||
         st.state == TaskState::kRunning);
  st.worker = -1;
  enqueue_ready(id, now);
}

std::size_t TaskStateTable::reset_lost(
    dag::TaskId id, Tick now,
    const std::function<bool(dag::TaskId)>& output_available) {
  if (states_[static_cast<std::size_t>(id)].state != TaskState::kDone) {
    return 0;
  }

  // Phase 1: DFS over completed ancestors whose outputs are also gone.
  std::vector<dag::TaskId> to_reset;
  std::vector<dag::TaskId> stack{id};
  std::vector<bool> visited(states_.size(), false);
  visited[static_cast<std::size_t>(id)] = true;
  while (!stack.empty()) {
    const dag::TaskId cur = stack.back();
    stack.pop_back();
    to_reset.push_back(cur);
    for (dag::TaskId dep : graph_.task(cur).spec.deps) {
      const auto idx = static_cast<std::size_t>(dep);
      if (visited[idx]) continue;
      if (states_[idx].state == TaskState::kDone && !output_available(dep)) {
        visited[idx] = true;
        stack.push_back(dep);
      }
    }
  }

  // Phase 2: demote the reset set to waiting.
  for (dag::TaskId t : to_reset) {
    auto& st = states_[static_cast<std::size_t>(t)];
    st.state = TaskState::kWaiting;
    st.result.reset();
    st.worker = -1;
    --done_count_;
  }
  if (on_undone_) {
    for (dag::TaskId t : to_reset) on_undone_(t, now);
  }

  // Phase 3: dependents of reset tasks must wait for them again. Dependents
  // inside the reset set get recomputed in phase 4; dispatched/running/done
  // dependents already hold (or no longer need) the data.
  for (dag::TaskId t : to_reset) {
    for (dag::TaskId dep_id : graph_.task(t).dependents) {
      const auto idx = static_cast<std::size_t>(dep_id);
      if (visited[idx]) continue;  // in reset set
      auto& dep = states_[idx];
      if (dep.state == TaskState::kReady) {
        dep.state = TaskState::kWaiting;
        dep.deps_remaining += 1;
      } else if (dep.state == TaskState::kWaiting) {
        dep.deps_remaining += 1;
      }
    }
  }

  // Phase 4: recompute readiness of the reset set itself.
  for (dag::TaskId t : to_reset) {
    auto& st = states_[static_cast<std::size_t>(t)];
    std::uint32_t remaining = 0;
    for (dag::TaskId dep : graph_.task(t).spec.deps) {
      if (states_[static_cast<std::size_t>(dep)].state != TaskState::kDone) {
        ++remaining;
      }
    }
    st.deps_remaining = remaining;
    if (remaining == 0) {
      enqueue_ready(t, now);
    }
  }
  return to_reset.size();
}

std::vector<dag::ValuePtr> TaskStateTable::gather_inputs(
    dag::TaskId id) const {
  const auto& deps = graph_.task(id).spec.deps;
  std::vector<dag::ValuePtr> inputs;
  inputs.reserve(deps.size());
  for (dag::TaskId dep : deps) {
    const auto& st = states_[static_cast<std::size_t>(dep)];
    assert(st.state == TaskState::kDone && st.result);
    inputs.push_back(st.result);
  }
  return inputs;
}

}  // namespace hepvine::exec
