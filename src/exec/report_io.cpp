#include "exec/report_io.h"

#include <cstdio>

#include "obs/attribution.h"

namespace hepvine::exec {

namespace {

/// One blame category's core-seconds for CSV output (exact int64 ticks
/// divided once for display).
double blame_core_s(const obs::AttributionLedger& ledger, obs::Blame b) {
  return static_cast<double>(
             ledger.ticks[static_cast<std::size_t>(b)]) /
         static_cast<double>(util::kSec);
}

}  // namespace

std::string summarize(const RunReport& report) {
  char buf[512];
  std::string out;
  std::snprintf(buf, sizeof(buf), "scheduler:      %s\n",
                report.scheduler.c_str());
  out += buf;
  std::snprintf(buf, sizeof(buf), "outcome:        %s%s%s\n",
                report.success ? "success" : "FAILED",
                report.success ? "" : " — ",
                report.success ? "" : report.failure_reason.c_str());
  out += buf;
  std::snprintf(buf, sizeof(buf), "makespan:       %s\n",
                util::format_duration(report.makespan).c_str());
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "tasks:          %zu (%zu attempts, %zu failures, %zu "
                "lineage resets)\n",
                report.tasks_total, report.task_attempts,
                report.task_failures, report.lineage_resets);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "workers:        %u preemptions, %u crashes\n",
                report.worker_preemptions, report.worker_crashes);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "data movement:  manager %s, peer %s, total %s\n",
                util::format_bytes(report.transfers.manager_bytes()).c_str(),
                util::format_bytes(report.transfers.peer_bytes()).c_str(),
                util::format_bytes(report.transfers.total()).c_str());
  out += buf;
  std::snprintf(buf, sizeof(buf), "peak cache:     %s\n",
                util::format_bytes(report.cache.global_peak()).c_str());
  out += buf;
  if (report.cache_evictions > 0 || report.cache_gc_drops > 0 ||
      report.peer_slot_underflows > 0) {
    std::snprintf(
        buf, sizeof(buf),
        "disk lifecycle: %llu evictions (%s freed), %llu gc drops, "
        "%llu peer-slot underflows\n",
        static_cast<unsigned long long>(report.cache_evictions),
        util::format_bytes(report.cache_evicted_bytes).c_str(),
        static_cast<unsigned long long>(report.cache_gc_drops),
        static_cast<unsigned long long>(report.peer_slot_underflows));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "manager busy:   %.1f%% of makespan\n",
                report.manager_busy_fraction * 100.0);
  out += buf;
  {
    const obs::AttributionLedger ledger = obs::attribute(report.profile);
    if (ledger.capacity > 0) {
      std::snprintf(
          buf, sizeof(buf),
          "core-seconds:   %.1f capacity: compute %.1f%%, transfer-wait "
          "%.1f%%, dispatch-wait %.1f%%, import %.1f%%, recovery %.1f%%, "
          "idle %.1f%%, preempted %.1f%%%s\n",
          static_cast<double>(ledger.capacity) /
              static_cast<double>(util::kSec),
          ledger.fraction(obs::Blame::kCompute) * 100.0,
          ledger.fraction(obs::Blame::kTransferWait) * 100.0,
          ledger.fraction(obs::Blame::kDispatchWait) * 100.0,
          ledger.fraction(obs::Blame::kImport) * 100.0,
          ledger.fraction(obs::Blame::kRecovery) * 100.0,
          ledger.fraction(obs::Blame::kIdle) * 100.0,
          ledger.fraction(obs::Blame::kPreempted) * 100.0,
          ledger.identity_ok() ? "" : "  [IDENTITY VIOLATION]");
      out += buf;
    }
  }
  if (report.faults.faults_injected > 0) {
    std::snprintf(
        buf, sizeof(buf),
        "faults:         %llu injected (%llu crashes, %llu cache losses, "
        "%llu transfer kills, %llu fs windows, %llu stragglers)\n",
        static_cast<unsigned long long>(report.faults.faults_injected),
        static_cast<unsigned long long>(report.faults.worker_crashes),
        static_cast<unsigned long long>(report.faults.cache_losses),
        static_cast<unsigned long long>(report.faults.transfers_killed),
        static_cast<unsigned long long>(report.faults.fs_degradations),
        static_cast<unsigned long long>(report.faults.stragglers));
    out += buf;
    std::snprintf(
        buf, sizeof(buf),
        "recovery:       %llu re-fetch retries, %s backoff, %s fs-degraded\n",
        static_cast<unsigned long long>(report.faults.transfer_retries),
        util::format_duration(report.faults.backoff_wait).c_str(),
        util::format_duration(report.faults.fs_degraded_time).c_str());
    out += buf;
  }
  if (report.observation && report.observation->enabled()) {
    const auto& obs = *report.observation;
    std::snprintf(buf, sizeof(buf),
                  "observability:  %llu txn events (%llu rotated out), "
                  "%zu perf samples, %zu trace events\n",
                  static_cast<unsigned long long>(obs.txn().events()),
                  static_cast<unsigned long long>(obs.txn().dropped()),
                  obs.perf().rows().size(), obs.trace().events());
    out += buf;
  }
  return out;
}

std::string csv_header() {
  return "scheduler,success,makespan_s,tasks,attempts,failures,"
         "lineage_resets,preemptions,crashes,manager_busy_fraction,"
         "manager_bytes,peer_bytes,peak_cache_bytes,faults_injected,"
         "transfers_killed,transfer_retries,cache_evictions,"
         "cache_gc_drops,peer_slot_underflows,"
         "compute_core_s,import_core_s,transfer_wait_core_s,"
         "dispatch_wait_core_s,recovery_core_s,idle_core_s,"
         "preempted_core_s\n";
}

std::string csv_row(const RunReport& report) {
  const obs::AttributionLedger ledger = obs::attribute(report.profile);
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "%s,%d,%.3f,%zu,%zu,%zu,%zu,%u,%u,%.4f,%llu,%llu,%llu,%llu,%llu,"
      "%llu,%llu,%llu,%llu,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f\n",
      report.scheduler.c_str(), report.success ? 1 : 0,
      report.makespan_seconds(), report.tasks_total, report.task_attempts,
      report.task_failures, report.lineage_resets, report.worker_preemptions,
      report.worker_crashes, report.manager_busy_fraction,
      static_cast<unsigned long long>(report.transfers.manager_bytes()),
      static_cast<unsigned long long>(report.transfers.peer_bytes()),
      static_cast<unsigned long long>(report.cache.global_peak()),
      static_cast<unsigned long long>(report.faults.faults_injected),
      static_cast<unsigned long long>(report.faults.transfers_killed),
      static_cast<unsigned long long>(report.faults.transfer_retries),
      static_cast<unsigned long long>(report.cache_evictions),
      static_cast<unsigned long long>(report.cache_gc_drops),
      static_cast<unsigned long long>(report.peer_slot_underflows),
      blame_core_s(ledger, obs::Blame::kCompute),
      blame_core_s(ledger, obs::Blame::kImport),
      blame_core_s(ledger, obs::Blame::kTransferWait),
      blame_core_s(ledger, obs::Blame::kDispatchWait),
      blame_core_s(ledger, obs::Blame::kRecovery),
      blame_core_s(ledger, obs::Blame::kIdle),
      blame_core_s(ledger, obs::Blame::kPreempted));
  return buf;
}

}  // namespace hepvine::exec
