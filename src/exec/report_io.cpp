#include "exec/report_io.h"

#include <cstdio>

namespace hepvine::exec {

std::string summarize(const RunReport& report) {
  char buf[512];
  std::string out;
  std::snprintf(buf, sizeof(buf), "scheduler:      %s\n",
                report.scheduler.c_str());
  out += buf;
  std::snprintf(buf, sizeof(buf), "outcome:        %s%s%s\n",
                report.success ? "success" : "FAILED",
                report.success ? "" : " — ",
                report.success ? "" : report.failure_reason.c_str());
  out += buf;
  std::snprintf(buf, sizeof(buf), "makespan:       %s\n",
                util::format_duration(report.makespan).c_str());
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "tasks:          %zu (%zu attempts, %zu failures, %zu "
                "lineage resets)\n",
                report.tasks_total, report.task_attempts,
                report.task_failures, report.lineage_resets);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "workers:        %u preemptions, %u crashes\n",
                report.worker_preemptions, report.worker_crashes);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "data movement:  manager %s, peer %s, total %s\n",
                util::format_bytes(report.transfers.manager_bytes()).c_str(),
                util::format_bytes(report.transfers.peer_bytes()).c_str(),
                util::format_bytes(report.transfers.total()).c_str());
  out += buf;
  std::snprintf(buf, sizeof(buf), "peak cache:     %s\n",
                util::format_bytes(report.cache.global_peak()).c_str());
  out += buf;
  if (report.cache_evictions > 0 || report.cache_gc_drops > 0 ||
      report.peer_slot_underflows > 0) {
    std::snprintf(
        buf, sizeof(buf),
        "disk lifecycle: %llu evictions (%s freed), %llu gc drops, "
        "%llu peer-slot underflows\n",
        static_cast<unsigned long long>(report.cache_evictions),
        util::format_bytes(report.cache_evicted_bytes).c_str(),
        static_cast<unsigned long long>(report.cache_gc_drops),
        static_cast<unsigned long long>(report.peer_slot_underflows));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "manager busy:   %.1f%% of makespan\n",
                report.manager_busy_fraction * 100.0);
  out += buf;
  if (report.faults.faults_injected > 0) {
    std::snprintf(
        buf, sizeof(buf),
        "faults:         %llu injected (%llu crashes, %llu cache losses, "
        "%llu transfer kills, %llu fs windows, %llu stragglers)\n",
        static_cast<unsigned long long>(report.faults.faults_injected),
        static_cast<unsigned long long>(report.faults.worker_crashes),
        static_cast<unsigned long long>(report.faults.cache_losses),
        static_cast<unsigned long long>(report.faults.transfers_killed),
        static_cast<unsigned long long>(report.faults.fs_degradations),
        static_cast<unsigned long long>(report.faults.stragglers));
    out += buf;
    std::snprintf(
        buf, sizeof(buf),
        "recovery:       %llu re-fetch retries, %s backoff, %s fs-degraded\n",
        static_cast<unsigned long long>(report.faults.transfer_retries),
        util::format_duration(report.faults.backoff_wait).c_str(),
        util::format_duration(report.faults.fs_degraded_time).c_str());
    out += buf;
  }
  if (report.observation && report.observation->enabled()) {
    const auto& obs = *report.observation;
    std::snprintf(buf, sizeof(buf),
                  "observability:  %llu txn events (%llu rotated out), "
                  "%zu perf samples, %zu trace events\n",
                  static_cast<unsigned long long>(obs.txn().events()),
                  static_cast<unsigned long long>(obs.txn().dropped()),
                  obs.perf().rows().size(), obs.trace().events());
    out += buf;
  }
  return out;
}

std::string csv_header() {
  return "scheduler,success,makespan_s,tasks,attempts,failures,"
         "lineage_resets,preemptions,crashes,manager_busy_fraction,"
         "manager_bytes,peer_bytes,peak_cache_bytes,faults_injected,"
         "transfers_killed,transfer_retries,cache_evictions,"
         "cache_gc_drops,peer_slot_underflows\n";
}

std::string csv_row(const RunReport& report) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "%s,%d,%.3f,%zu,%zu,%zu,%zu,%u,%u,%.4f,%llu,%llu,%llu,%llu,%llu,"
      "%llu,%llu,%llu,%llu\n",
      report.scheduler.c_str(), report.success ? 1 : 0,
      report.makespan_seconds(), report.tasks_total, report.task_attempts,
      report.task_failures, report.lineage_resets, report.worker_preemptions,
      report.worker_crashes, report.manager_busy_fraction,
      static_cast<unsigned long long>(report.transfers.manager_bytes()),
      static_cast<unsigned long long>(report.transfers.peer_bytes()),
      static_cast<unsigned long long>(report.cache.global_peak()),
      static_cast<unsigned long long>(report.faults.faults_injected),
      static_cast<unsigned long long>(report.faults.transfers_killed),
      static_cast<unsigned long long>(report.faults.transfer_retries),
      static_cast<unsigned long long>(report.cache_evictions),
      static_cast<unsigned long long>(report.cache_gc_drops),
      static_cast<unsigned long long>(report.peer_slot_underflows));
  return buf;
}

}  // namespace hepvine::exec
