file(REMOVE_RECURSE
  "libhepvine_exec.a"
)
