# Empty dependencies file for hepvine_exec.
# This may be replaced when dependencies are built.
