file(REMOVE_RECURSE
  "CMakeFiles/hepvine_exec.dir/report_io.cpp.o"
  "CMakeFiles/hepvine_exec.dir/report_io.cpp.o.d"
  "CMakeFiles/hepvine_exec.dir/scheduler.cpp.o"
  "CMakeFiles/hepvine_exec.dir/scheduler.cpp.o.d"
  "CMakeFiles/hepvine_exec.dir/task_state.cpp.o"
  "CMakeFiles/hepvine_exec.dir/task_state.cpp.o.d"
  "libhepvine_exec.a"
  "libhepvine_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hepvine_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
