// Per-task runtime state shared by every scheduler implementation: the
// dependency-counting state machine that turns a static TaskGraph into a
// stream of ready tasks, plus value plumbing and retry accounting.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "dag/task_graph.h"
#include "util/units.h"

namespace hepvine::exec {

using util::Tick;

enum class TaskState : std::uint8_t {
  kWaiting,     // dependencies outstanding
  kReady,       // dispatchable
  kDispatched,  // sent to a worker, staging inputs
  kRunning,     // executing
  kDone,        // result produced and retained somewhere reachable
};

struct TaskRuntime {
  TaskState state = TaskState::kWaiting;
  std::uint32_t deps_remaining = 0;
  std::uint32_t attempts = 0;
  Tick ready_at = 0;
  Tick dispatched_at = 0;
  Tick started_at = 0;
  std::int32_t worker = -1;
  dag::ValuePtr result;  // set when kDone
};

/// Tracks task states, maintains the ready queue, and recomputes
/// readiness after failures (lineage resets).
///
/// Ready ordering is depth-first: among ready tasks, the one deepest in
/// the graph (longest dependency chain beneath it) dispatches first, FIFO
/// within a depth. Running reductions eagerly bounds the volume of
/// standing intermediate data — with plain FIFO, a wide map phase starves
/// the accumulators and partial results pile up on worker disks until they
/// overflow (the pathology of the paper's Fig 11, but induced by schedule
/// order rather than DAG shape).
class TaskStateTable {
 public:
  /// `depth_priority` = false degrades ordering to plain FIFO (the legacy
  /// Work Queue executor's behaviour; DaskVine forwards Dask's depth-first
  /// priorities, so TaskVine runs depth-first).
  explicit TaskStateTable(const dag::TaskGraph& graph,
                          bool depth_priority = true);

  /// Depth (longest chain of dependencies below the task); roots are 0.
  [[nodiscard]] std::uint32_t depth(dag::TaskId id) const {
    return depths_[static_cast<std::size_t>(id)];
  }

  [[nodiscard]] TaskRuntime& at(dag::TaskId id) {
    return states_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const TaskRuntime& at(dag::TaskId id) const {
    return states_[static_cast<std::size_t>(id)];
  }

  [[nodiscard]] bool all_done() const noexcept {
    return done_count_ == states_.size();
  }
  [[nodiscard]] std::size_t done_count() const noexcept {
    return done_count_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return states_.size(); }

  [[nodiscard]] bool has_ready() const noexcept { return !ready_queue_.empty(); }
  [[nodiscard]] std::size_t ready_count() const noexcept {
    return ready_queue_.size();
  }

  /// Pop the oldest ready task; kInvalidTask if none. Skips entries whose
  /// state changed since queueing (e.g. reset by a failure).
  dag::TaskId pop_ready();

  /// Peek without popping (same skipping rule).
  dag::TaskId peek_ready();

  /// Mark a task dispatched/running/done; `mark_done` decrements dependents'
  /// counters and enqueues newly ready tasks (recording ready_at = now).
  void mark_dispatched(dag::TaskId id, std::int32_t worker, Tick now);
  void mark_running(dag::TaskId id, Tick now);
  void mark_done(dag::TaskId id, dag::ValuePtr result, Tick now);

  /// Return a dispatched/running task to the ready queue (worker failed
  /// before completion). Increments attempts.
  void requeue(dag::TaskId id, Tick now);

  /// Lineage reset: a *completed* task's output was lost and is needed
  /// again. Recursively resets `id` (and any completed ancestors whose
  /// outputs are also gone, as reported by `output_available`) back to
  /// waiting/ready. Returns the number of tasks reset.
  std::size_t reset_lost(dag::TaskId id, Tick now,
                         const std::function<bool(dag::TaskId)>&
                             output_available);

  /// Gather dependency values in declaration order (all deps must be done).
  [[nodiscard]] std::vector<dag::ValuePtr> gather_inputs(dag::TaskId id) const;

  /// Observe every waiting->ready transition (initial readiness, dependency
  /// completion, requeue after failure, lineage reset). Fires after the
  /// task's state is updated; used by schedulers to emit TASK WAITING
  /// transaction-log records at the exact transition time. Tasks already
  /// ready when the listener is installed are not replayed.
  using ReadyListener = std::function<void(dag::TaskId, Tick)>;
  void set_ready_listener(ReadyListener fn) { on_ready_ = std::move(fn); }

  /// Observe every done->waiting demotion performed by `reset_lost`. Fires
  /// once per demoted task, in the (deterministic) DFS discovery order,
  /// after the whole reset set left kDone but before readiness is
  /// recomputed. Schedulers that account per-file consumer reference
  /// counts need this: a demoted consumer will complete (and decrement)
  /// again, so its references must be re-acquired.
  using UndoneListener = std::function<void(dag::TaskId, Tick)>;
  void set_undone_listener(UndoneListener fn) { on_undone_ = std::move(fn); }

 private:
  void enqueue_ready(dag::TaskId id, Tick now);

  struct ReadyEntry {
    std::uint32_t depth = 0;
    std::uint64_t seq = 0;
    dag::TaskId id = 0;
  };
  struct ShallowerOrLater {
    bool operator()(const ReadyEntry& a, const ReadyEntry& b) const {
      if (a.depth != b.depth) return a.depth < b.depth;  // deeper first
      return a.seq > b.seq;                              // FIFO within depth
    }
  };

  const dag::TaskGraph& graph_;
  std::vector<TaskRuntime> states_;
  std::vector<std::uint32_t> depths_;
  std::priority_queue<ReadyEntry, std::vector<ReadyEntry>, ShallowerOrLater>
      ready_queue_;
  std::uint64_t ready_seq_ = 0;
  std::size_t done_count_ = 0;
  ReadyListener on_ready_;
  UndoneListener on_undone_;
};

}  // namespace hepvine::exec
