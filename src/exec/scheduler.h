// Scheduler backend interface (the paper's "scheduler layer") plus the run
// options and report shared by Work Queue, TaskVine, and Dask.Distributed.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "cluster/cluster.h"
#include "dag/task_graph.h"
#include "fault/fault_schedule.h"
#include "ha/ha_options.h"
#include "metrics/cache_trace.h"
#include "metrics/task_trace.h"
#include "metrics/transfer_matrix.h"
#include "obs/observer.h"
#include "obs/span.h"
#include "pyrt/python_runtime.h"
#include "util/units.h"

namespace hepvine::exec {

using util::Tick;

/// Task execution paradigm (paper Section IV-B, "Serverless Execution").
enum class ExecMode : std::uint8_t {
  /// Serialize function + args per task; worker spawns a fresh interpreter.
  kStandardTasks,
  /// Persistent LibraryTask per worker; tasks become FunctionCalls that
  /// fork from it.
  kFunctionCalls,
};

[[nodiscard]] const char* to_string(ExecMode mode);

struct RunOptions {
  ExecMode mode = ExecMode::kStandardTasks;
  /// Allow direct worker->worker transfers of cached files (TaskVine).
  bool peer_transfers = true;
  /// Hoist imports into the LibraryTask preamble (serverless only).
  bool hoist_imports = true;
  /// Serve the software environment from the shared filesystem instead of
  /// the worker's local disk (the Fig 10 comparison axis).
  bool env_from_shared_fs = false;
  /// Stream dataset inputs from the wide-area XRootD federation instead of
  /// the facility's local data store (paper Section IV-A: the option the
  /// group abandoned as impractical).
  bool inputs_from_wan = false;
  /// Max concurrent peer transfers a worker may source (TaskVine throttle);
  /// 0 = unlimited.
  std::uint32_t peer_transfer_limit = 3;
  /// Target number of replicas for intermediate task outputs (TaskVine
  /// temp-file replication). 1 = no extra copies; higher values let the
  /// workflow survive preemption without lineage re-execution, at the cost
  /// of background peer transfers and disk.
  std::uint32_t intermediate_replicas = 1;
  /// Multiplicative jitter on task compute times (heterogeneity beyond the
  /// per-node speed factor); 0 disables.
  double exec_time_jitter = 0.15;
  /// Python runtime and import costs.
  pyrt::PythonRuntimeSpec python = pyrt::default_python_runtime();
  pyrt::ImportSet imports = pyrt::hep_import_set();
  /// Give up if simulated time passes this horizon.
  Tick max_sim_time = 12 * util::kHour;
  /// Cache-usage sampling period (Fig 11 traces).
  Tick cache_sample_interval = 5 * util::kSec;
  /// Task retry budget before the run is declared failed.
  std::uint32_t max_task_retries = 8;
  std::uint64_t seed = 42;
  /// Observability sinks (transactions log, performance log, Chrome trace).
  /// Disabled by default; see obs/observer.h.
  obs::ObsConfig observability;
  /// Deterministic fault schedule (crashes, cache loss, transfer kills, FS
  /// brownouts, stragglers). Empty by default: no injector is constructed
  /// and the run is byte-identical to one without the hooks.
  fault::FaultSchedule faults;
  /// Recovery knobs: capped exponential re-fetch backoff and the
  /// poisoned-task detector. Always consulted, faults or not.
  fault::RetryPolicy fault_retry;
  /// Manager high availability: snapshot cadence + recovery cost model +
  /// elastic worker factory. All disabled by default — a default-HA run is
  /// byte-identical to a pre-HA run.
  ha::HaOptions ha;
};

struct RunReport {
  std::string scheduler;
  bool success = false;
  std::string failure_reason;
  Tick makespan = 0;

  std::size_t tasks_total = 0;
  std::size_t task_attempts = 0;
  std::size_t task_failures = 0;
  /// Completed tasks that had to re-execute because their output (and all
  /// replicas) were lost to worker failures.
  std::size_t lineage_resets = 0;
  std::uint32_t worker_preemptions = 0;
  std::uint32_t worker_crashes = 0;  // non-preemption failures (e.g. disk)

  // --- worker-disk lifecycle (vine/wq engine) ----------------------------
  /// Files evicted under disk pressure (DataPolicy::evict_on_pressure):
  /// the LRU victim count and the bytes they freed. Zero when eviction is
  /// disabled or pressure never materialised.
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_evicted_bytes = 0;
  /// Replicas garbage-collected because every consumer of the file
  /// completed (the ref-count path, not pressure).
  std::uint64_t cache_gc_drops = 0;
  /// Peer-transfer slot double-releases detected (and ignored) at
  /// release_peer_slot. Always zero in a healthy run; a Debug build
  /// asserts instead of counting.
  std::uint64_t peer_slot_underflows = 0;

  // --- node-local object store (VineTunables::object_store) --------------
  /// Outputs published in-memory (no serialization, no disk write), the
  /// by-reference handles colocated consumers took on them, the objects
  /// forced onto disk (capacity pressure or a remote consumer), and the
  /// objects that died in memory without ever touching disk. All zero when
  /// the store is off.
  std::uint64_t store_puts = 0;
  std::uint64_t store_put_bytes = 0;
  std::uint64_t store_ref_hits = 0;
  std::uint64_t store_spills = 0;
  std::uint64_t store_spill_bytes = 0;
  std::uint64_t store_drops = 0;

  /// What the fault injector did to this run and what recovery cost
  /// (faults_injected, transfers_killed, backoff_wait, ...). All zero when
  /// RunOptions::faults was empty.
  fault::InjectionStats faults;

  /// Manager-HA observations: whether (and when) the manager crashed, the
  /// snapshot series it produced, and factory elasticity counters. Feed a
  /// crashed report to ha::recover() (ha/recovery.h) to rebuild the run.
  ha::HaRunState ha;

  /// Fraction of the makespan the manager's control loop was busy
  /// (dispatching, ingesting results, brokering transfers). Near 1.0 means
  /// the run was dispatch-bound — the Stack-3 regime of Fig 13. Derived
  /// from the attribution ledger (obs::attribute over `profile`);
  /// `manager_busy_fraction_legacy` keeps the backend's direct measurement
  /// for cross-checking, and the two must agree exactly.
  double manager_busy_fraction = 0.0;
  double manager_busy_fraction_legacy = 0.0;

  /// Per-attempt lifecycle spans, worker capacity timeline, wire flows and
  /// cache drops — the raw material for core-second blame accounting and
  /// critical-path extraction (obs/attribution.h, obs/critical_path.h).
  /// Always recorded; serialize with profile.write_file for vine_profile.
  obs::SpanLog profile;

  metrics::TaskTrace trace;
  metrics::TransferMatrix transfers;
  metrics::CacheTrace cache;

  /// Observability capture for this run (never null when the backend ran;
  /// a disabled config yields an empty observation). Holds the transaction
  /// ring tail, the perf-log time series with final counter values, and
  /// the Chrome-trace builder.
  std::shared_ptr<obs::RunObservation> observation;

  /// Final values of the graph's sink tasks (real physics results).
  std::map<dag::TaskId, dag::ValuePtr> results;

  [[nodiscard]] double makespan_seconds() const {
    return util::to_seconds(makespan);
  }
};

class SchedulerBackend {
 public:
  virtual ~SchedulerBackend() = default;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Execute `graph` on `cluster`. Runs the cluster's event engine to
  /// completion (or failure) and returns the report. The cluster must be
  /// freshly constructed (time zero, no workers yet requested).
  virtual RunReport run(const dag::TaskGraph& graph,
                        cluster::Cluster& cluster,
                        const RunOptions& options) = 0;
};

}  // namespace hepvine::exec
