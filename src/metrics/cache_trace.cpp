#include "metrics/cache_trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace hepvine::metrics {

std::vector<std::uint64_t> CacheTrace::peak_per_worker() const {
  std::vector<std::uint64_t> peaks(workers_, 0);
  for (const auto& s : samples_) {
    peaks[s.worker] = std::max(peaks[s.worker], s.bytes);
  }
  return peaks;
}

std::uint64_t CacheTrace::global_peak() const {
  std::uint64_t peak = 0;
  for (const auto& s : samples_) peak = std::max(peak, s.bytes);
  return peak;
}

double CacheTrace::peak_skew() const {
  auto peaks = peak_per_worker();
  if (peaks.empty()) return 0.0;
  std::sort(peaks.begin(), peaks.end());
  const std::uint64_t median = peaks[peaks.size() / 2];
  const std::uint64_t maxv = peaks.back();
  if (median == 0) return maxv > 0 ? std::numeric_limits<double>::infinity()
                                   : 1.0;
  return static_cast<double>(maxv) / static_cast<double>(median);
}

std::string CacheTrace::render(Tick horizon, std::size_t width,
                               std::size_t max_rows) const {
  if (workers_ == 0 || samples_.empty()) return "(no cache samples)\n";
  const std::size_t wstride = (workers_ + max_rows - 1) / max_rows;
  const std::size_t rows = (workers_ + wstride - 1) / wstride;
  const Tick tstride = std::max<Tick>(1, horizon / static_cast<Tick>(width));

  // Last-seen usage per (row, column): keep max within bucket.
  std::vector<std::uint64_t> grid(rows * width, 0);
  std::uint64_t maxv = 1;
  for (const auto& s : samples_) {
    const std::size_t row = s.worker / wstride;
    auto col = static_cast<std::size_t>(s.t / tstride);
    if (row >= rows) continue;
    col = std::min(col, width - 1);
    grid[row * width + col] = std::max(grid[row * width + col], s.bytes);
    maxv = std::max(maxv, s.bytes);
  }

  static constexpr char kRamp[] = " .:-=+*#%@";
  const double dmax = static_cast<double>(maxv);
  std::string out;
  char label[48];
  std::snprintf(label, sizeof(label), "cache usage (peak %s)\n",
                util::format_bytes(maxv).c_str());
  out += label;
  std::vector<std::string> lines(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    std::string line(width, ' ');
    for (std::size_t c = 0; c < width; ++c) {
      const std::uint64_t v = grid[r * width + c];
      if (v) {
        auto level = static_cast<std::size_t>(
            static_cast<double>(v) / dmax * 9.0 + 0.5);
        level = std::clamp<std::size_t>(level, 1, 9);
        line[c] = kRamp[level];
      }
    }
    lines[r] = std::move(line);
  }
  for (const auto& f : failures_) {
    const std::size_t row = f.worker / wstride;
    auto col = static_cast<std::size_t>(f.t / tstride);
    if (row < rows) lines[row][std::min(col, width - 1)] = 'X';
  }
  for (std::size_t r = 0; r < rows; ++r) {
    std::snprintf(label, sizeof(label), "w%04zu |", r * wstride);
    out += label + lines[r] + "|\n";
  }
  std::snprintf(label, sizeof(label), "       t=0 .. t=%.0fs, %zu failures\n",
                util::to_seconds(horizon), failures_.size());
  out += label;
  return out;
}

std::string CacheTrace::to_csv() const {
  std::string out = "t_us,worker,bytes\n";
  for (const auto& s : samples_) {
    out += std::to_string(s.t) + "," + std::to_string(s.worker) + "," +
           std::to_string(s.bytes) + "\n";
  }
  return out;
}

std::string CacheTrace::events_csv() const {
  std::string out = "t_us,worker,kind,bytes\n";
  for (const auto& f : failures_) {
    out += std::to_string(f.t) + "," + std::to_string(f.worker) +
           ",failure,0\n";
  }
  for (const auto& e : evictions_) {
    out += std::to_string(e.t) + "," + std::to_string(e.worker) +
           ",eviction," + std::to_string(e.bytes) + "\n";
  }
  return out;
}

}  // namespace hepvine::metrics
