// Per-worker cache (local disk) usage over time, with failure marks —
// the data behind the paper's Fig 11 (single-node vs tree reduction).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.h"

namespace hepvine::metrics {

using util::Tick;

class CacheTrace {
 public:
  CacheTrace() = default;
  explicit CacheTrace(std::size_t workers) : workers_(workers) {}

  void sample(std::size_t worker, Tick t, std::uint64_t bytes_used) {
    if (worker < workers_) samples_.push_back({t, worker, bytes_used});
  }
  void mark_failure(std::size_t worker, Tick t) {
    failures_.push_back({t, worker});
  }
  /// A pressure eviction freed `bytes` on `worker` — the mitigation path
  /// that, when enabled, replaces the failure marks above (Fig 11's
  /// eviction-on ablation).
  void mark_eviction(std::size_t worker, Tick t, std::uint64_t bytes) {
    evictions_.push_back({t, worker, bytes});
  }

  [[nodiscard]] std::size_t workers() const noexcept { return workers_; }
  [[nodiscard]] std::size_t failure_count() const noexcept {
    return failures_.size();
  }
  [[nodiscard]] std::size_t eviction_count() const noexcept {
    return evictions_.size();
  }
  [[nodiscard]] std::uint64_t evicted_bytes() const noexcept {
    std::uint64_t total = 0;
    for (const auto& e : evictions_) total += e.bytes;
    return total;
  }

  /// Peak usage per worker (bytes); index = worker.
  [[nodiscard]] std::vector<std::uint64_t> peak_per_worker() const;

  /// Global peak across all workers.
  [[nodiscard]] std::uint64_t global_peak() const;

  /// Spread of peaks: max worker peak / median worker peak (>1 means a few
  /// outlier workers accumulate far more than the rest — the failure mode
  /// of single-node reductions).
  [[nodiscard]] double peak_skew() const;

  /// ASCII chart: one line per displayed worker, usage over time bucketed
  /// into `width` columns, 'X' marking failures.
  [[nodiscard]] std::string render(Tick horizon, std::size_t width = 64,
                                   std::size_t max_rows = 20) const;

  [[nodiscard]] std::string to_csv() const;

  /// Discrete cache events (worker failures, pressure evictions) as CSV:
  /// `t_us,worker,kind,bytes` — failures first, then evictions, each group
  /// in record order.
  [[nodiscard]] std::string events_csv() const;

 private:
  struct Sample {
    Tick t = 0;
    std::size_t worker = 0;
    std::uint64_t bytes = 0;
  };
  struct Failure {
    Tick t = 0;
    std::size_t worker = 0;
  };
  struct Eviction {
    Tick t = 0;
    std::size_t worker = 0;
    std::uint64_t bytes = 0;
  };
  std::size_t workers_ = 0;
  std::vector<Sample> samples_;
  std::vector<Failure> failures_;
  std::vector<Eviction> evictions_;
};

}  // namespace hepvine::metrics
