// Per-worker cache (local disk) usage over time, with failure marks —
// the data behind the paper's Fig 11 (single-node vs tree reduction).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.h"

namespace hepvine::metrics {

using util::Tick;

class CacheTrace {
 public:
  CacheTrace() = default;
  explicit CacheTrace(std::size_t workers) : workers_(workers) {}

  void sample(std::size_t worker, Tick t, std::uint64_t bytes_used) {
    if (worker < workers_) samples_.push_back({t, worker, bytes_used});
  }
  void mark_failure(std::size_t worker, Tick t) {
    failures_.push_back({t, worker});
  }

  [[nodiscard]] std::size_t workers() const noexcept { return workers_; }
  [[nodiscard]] std::size_t failure_count() const noexcept {
    return failures_.size();
  }

  /// Peak usage per worker (bytes); index = worker.
  [[nodiscard]] std::vector<std::uint64_t> peak_per_worker() const;

  /// Global peak across all workers.
  [[nodiscard]] std::uint64_t global_peak() const;

  /// Spread of peaks: max worker peak / median worker peak (>1 means a few
  /// outlier workers accumulate far more than the rest — the failure mode
  /// of single-node reductions).
  [[nodiscard]] double peak_skew() const;

  /// ASCII chart: one line per displayed worker, usage over time bucketed
  /// into `width` columns, 'X' marking failures.
  [[nodiscard]] std::string render(Tick horizon, std::size_t width = 64,
                                   std::size_t max_rows = 20) const;

  [[nodiscard]] std::string to_csv() const;

 private:
  struct Sample {
    Tick t = 0;
    std::size_t worker = 0;
    std::uint64_t bytes = 0;
  };
  struct Failure {
    Tick t = 0;
    std::size_t worker = 0;
  };
  std::size_t workers_ = 0;
  std::vector<Sample> samples_;
  std::vector<Failure> failures_;
};

}  // namespace hepvine::metrics
