file(REMOVE_RECURSE
  "libhepvine_metrics.a"
)
