# Empty dependencies file for hepvine_metrics.
# This may be replaced when dependencies are built.
