file(REMOVE_RECURSE
  "CMakeFiles/hepvine_metrics.dir/cache_trace.cpp.o"
  "CMakeFiles/hepvine_metrics.dir/cache_trace.cpp.o.d"
  "CMakeFiles/hepvine_metrics.dir/task_trace.cpp.o"
  "CMakeFiles/hepvine_metrics.dir/task_trace.cpp.o.d"
  "CMakeFiles/hepvine_metrics.dir/transfer_matrix.cpp.o"
  "CMakeFiles/hepvine_metrics.dir/transfer_matrix.cpp.o.d"
  "libhepvine_metrics.a"
  "libhepvine_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hepvine_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
