
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/cache_trace.cpp" "src/metrics/CMakeFiles/hepvine_metrics.dir/cache_trace.cpp.o" "gcc" "src/metrics/CMakeFiles/hepvine_metrics.dir/cache_trace.cpp.o.d"
  "/root/repo/src/metrics/task_trace.cpp" "src/metrics/CMakeFiles/hepvine_metrics.dir/task_trace.cpp.o" "gcc" "src/metrics/CMakeFiles/hepvine_metrics.dir/task_trace.cpp.o.d"
  "/root/repo/src/metrics/transfer_matrix.cpp" "src/metrics/CMakeFiles/hepvine_metrics.dir/transfer_matrix.cpp.o" "gcc" "src/metrics/CMakeFiles/hepvine_metrics.dir/transfer_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/util/CMakeFiles/hepvine_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
