#include "metrics/transfer_matrix.h"

#include <algorithm>
#include <cmath>

#include "util/units.h"

namespace hepvine::metrics {

std::uint64_t TransferMatrix::total() const {
  std::uint64_t sum = 0;
  for (auto v : cells_) sum += v;
  return sum;
}

std::uint64_t TransferMatrix::row_total(std::size_t src) const {
  std::uint64_t sum = 0;
  for (std::size_t d = 0; d < n_; ++d) sum += at(src, d);
  return sum;
}

std::uint64_t TransferMatrix::col_total(std::size_t dst) const {
  std::uint64_t sum = 0;
  for (std::size_t s = 0; s < n_; ++s) sum += at(s, dst);
  return sum;
}

std::uint64_t TransferMatrix::max_pair() const {
  std::uint64_t best = 0;
  for (auto v : cells_) best = std::max(best, v);
  return best;
}

std::uint64_t TransferMatrix::manager_bytes() const {
  return row_total(0) + col_total(0) - at(0, 0);
}

std::uint64_t TransferMatrix::between(std::size_t lo,
                                      std::size_t hi_exclusive) const {
  hi_exclusive = std::min(hi_exclusive, n_);
  std::uint64_t sum = 0;
  for (std::size_t s = lo; s < hi_exclusive; ++s) {
    for (std::size_t d = lo; d < hi_exclusive; ++d) sum += at(s, d);
  }
  return sum;
}

std::uint64_t TransferMatrix::peer_bytes() const {
  return n_ >= 2 ? between(1, n_ - 1) : 0;
}

std::string TransferMatrix::render_heatmap(std::size_t cells) const {
  if (n_ == 0) return "(empty)\n";
  const std::size_t buckets = std::min(cells, n_);
  const std::size_t stride = (n_ + buckets - 1) / buckets;
  const std::size_t rows = (n_ + stride - 1) / stride;

  // Aggregate into buckets.
  std::vector<std::uint64_t> grid(rows * rows, 0);
  for (std::size_t s = 0; s < n_; ++s) {
    for (std::size_t d = 0; d < n_; ++d) {
      const std::uint64_t v = at(s, d);
      if (v) grid[(s / stride) * rows + (d / stride)] += v;
    }
  }
  std::uint64_t maxv = 1;
  for (auto v : grid) maxv = std::max(maxv, v);

  static constexpr char kRamp[] = " .:-=+*#%@";
  const double logmax = std::log1p(static_cast<double>(maxv));
  std::string out;
  out.reserve(rows * (rows + 8));
  out += "      dst (0=manager) -->\n";
  for (std::size_t r = 0; r < rows; ++r) {
    out += (r == 0) ? "src 0 " : "      ";
    for (std::size_t c = 0; c < rows; ++c) {
      const std::uint64_t v = grid[r * rows + c];
      std::size_t level = 0;
      if (v > 0) {
        level = 1 + static_cast<std::size_t>(
                        std::log1p(static_cast<double>(v)) / logmax * 8.0);
        level = std::min<std::size_t>(level, 9);
      }
      out += kRamp[level];
    }
    out += '\n';
  }
  out += "max pair " + util::format_bytes(max_pair()) + ", manager " +
         util::format_bytes(manager_bytes()) + ", peer " +
         util::format_bytes(peer_bytes()) + ", total " +
         util::format_bytes(total()) + "\n";
  return out;
}

std::string TransferMatrix::to_csv() const {
  std::string out = "src,dst,bytes\n";
  for (std::size_t s = 0; s < n_; ++s) {
    for (std::size_t d = 0; d < n_; ++d) {
      const std::uint64_t v = at(s, d);
      if (v) {
        out += std::to_string(s) + "," + std::to_string(d) + "," +
               std::to_string(v) + "\n";
      }
    }
  }
  return out;
}

}  // namespace hepvine::metrics
