#include "metrics/task_trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace hepvine::metrics {

std::size_t TaskTrace::failures() const noexcept {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.failed) ++n;
  }
  return n;
}

std::vector<TaskTrace::ConcurrencyPoint> TaskTrace::concurrency_series(
    Tick step, Tick horizon) const {
  if (step <= 0) step = util::kSec;
  // Event-sweep: +1 running at started, -1 at finished; waiting between
  // ready and started.
  struct Delta {
    Tick t = 0;
    int running = 0;
    int waiting = 0;
  };
  std::vector<Delta> deltas;
  deltas.reserve(records_.size() * 3);
  for (const auto& r : records_) {
    deltas.push_back({r.ready_at, 0, +1});
    deltas.push_back({r.started_at, +1, -1});
    deltas.push_back({r.finished_at, -1, 0});
  }
  std::sort(deltas.begin(), deltas.end(),
            [](const Delta& a, const Delta& b) { return a.t < b.t; });

  std::vector<ConcurrencyPoint> out;
  out.reserve(static_cast<std::size_t>(horizon / step) + 1);
  std::int64_t running = 0;
  std::int64_t waiting = 0;
  std::size_t idx = 0;
  for (Tick t = 0; t <= horizon; t += step) {
    while (idx < deltas.size() && deltas[idx].t <= t) {
      running += deltas[idx].running;
      waiting += deltas[idx].waiting;
      ++idx;
    }
    out.push_back({t, running, std::max<std::int64_t>(waiting, 0)});
  }
  return out;
}

std::int64_t TaskTrace::peak_concurrency() const {
  struct Delta {
    Tick t = 0;
    int d = 0;
  };
  std::vector<Delta> deltas;
  deltas.reserve(records_.size() * 2);
  for (const auto& r : records_) {
    deltas.push_back({r.started_at, +1});
    deltas.push_back({r.finished_at, -1});
  }
  std::sort(deltas.begin(), deltas.end(), [](const Delta& a, const Delta& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.d < b.d;  // process departures first at ties
  });
  std::int64_t cur = 0;
  std::int64_t peak = 0;
  for (const auto& d : deltas) {
    cur += d.d;
    peak = std::max(peak, cur);
  }
  return peak;
}

std::vector<double> TaskTrace::worker_occupancy(std::int32_t workers, Tick t0,
                                                Tick t1) const {
  std::vector<double> out(static_cast<std::size_t>(std::max(workers, 0)), 0.0);
  if (t1 <= t0 || workers <= 0) return out;
  // Per-worker interval union via sweep.
  std::vector<std::vector<std::pair<Tick, Tick>>> intervals(
      static_cast<std::size_t>(workers));
  for (const auto& r : records_) {
    if (r.worker < 0 || r.worker >= workers) continue;
    const Tick a = std::max(r.started_at, t0);
    const Tick b = std::min(r.finished_at, t1);
    if (b > a) intervals[static_cast<std::size_t>(r.worker)].emplace_back(a, b);
  }
  for (std::size_t w = 0; w < intervals.size(); ++w) {
    auto& ivs = intervals[w];
    std::sort(ivs.begin(), ivs.end());
    Tick covered = 0;
    Tick cur_start = 0;
    Tick cur_end = -1;
    for (const auto& [a, b] : ivs) {
      if (a > cur_end) {
        if (cur_end > cur_start) covered += cur_end - cur_start;
        cur_start = a;
        cur_end = b;
      } else {
        cur_end = std::max(cur_end, b);
      }
    }
    if (cur_end > cur_start) covered += cur_end - cur_start;
    out[w] = static_cast<double>(covered) / static_cast<double>(t1 - t0);
  }
  return out;
}

std::vector<TaskTrace::TimeBucket> TaskTrace::exec_time_histogram(
    double lo_sec, double hi_sec, int buckets_per_decade) const {
  std::vector<TimeBucket> buckets;
  const double ratio = std::pow(10.0, 1.0 / buckets_per_decade);
  for (double lo = lo_sec; lo < hi_sec; lo *= ratio) {
    buckets.push_back({lo, lo * ratio, 0});
  }
  for (const auto& r : records_) {
    if (r.failed) continue;
    const double secs = util::to_seconds(r.exec_time());
    for (auto& b : buckets) {
      if (secs >= b.lo_sec && secs < b.hi_sec) {
        ++b.count;
        break;
      }
    }
  }
  return buckets;
}

std::string TaskTrace::render_histogram(const std::vector<TimeBucket>& buckets,
                                        std::size_t width) {
  std::uint64_t maxc = 1;
  for (const auto& b : buckets) maxc = std::max(maxc, b.count);
  std::string out;
  char line[160];
  for (const auto& b : buckets) {
    if (b.count == 0) continue;
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(b.count) / static_cast<double>(maxc) *
        static_cast<double>(width));
    std::snprintf(line, sizeof(line), "%8.2fs-%8.2fs |%-*s| %llu\n", b.lo_sec,
                  b.hi_sec, static_cast<int>(width),
                  std::string(bar, '#').c_str(),
                  static_cast<unsigned long long>(b.count));
    out += line;
  }
  return out;
}

std::string TaskTrace::render_occupancy(const std::vector<double>& occupancy,
                                        std::size_t width) {
  static constexpr char kRamp[] = " .:-=+*#%@";
  if (occupancy.empty()) return "(no workers)\n";
  const std::size_t stride = (occupancy.size() + width - 1) / width;
  std::string out = "workers [";
  for (std::size_t g = 0; g * stride < occupancy.size(); ++g) {
    double sum = 0;
    std::size_t n = 0;
    for (std::size_t i = g * stride;
         i < std::min(occupancy.size(), (g + 1) * stride); ++i, ++n) {
      sum += occupancy[i];
    }
    const double avg = n ? sum / static_cast<double>(n) : 0.0;
    auto level = static_cast<std::size_t>(avg * 9.0 + 0.5);
    level = std::min<std::size_t>(level, 9);
    out += kRamp[level];
  }
  out += "]\n";
  return out;
}

std::string TaskTrace::to_csv() const {
  std::string out =
      "task_id,worker,ready_us,dispatched_us,started_us,finished_us,failed,"
      "category\n";
  for (const auto& r : records_) {
    out += std::to_string(r.task_id) + "," + std::to_string(r.worker) + "," +
           std::to_string(r.ready_at) + "," + std::to_string(r.dispatched_at) +
           "," + std::to_string(r.started_at) + "," +
           std::to_string(r.finished_at) + "," + (r.failed ? "1" : "0") + "," +
           r.category + "\n";
  }
  return out;
}

std::map<std::string, TaskTrace::CategoryStats> TaskTrace::category_stats()
    const {
  std::map<std::string, std::vector<double>> times;
  for (const auto& r : records_) {
    if (r.failed) continue;
    times[r.category].push_back(util::to_seconds(r.exec_time()));
  }
  std::map<std::string, CategoryStats> out;
  for (auto& [category, values] : times) {
    std::sort(values.begin(), values.end());
    CategoryStats stats;
    stats.count = values.size();
    double sum = 0;
    for (double v : values) sum += v;
    stats.mean_sec = sum / static_cast<double>(values.size());
    stats.median_sec = values[values.size() / 2];
    stats.p95_sec =
        values[std::min(values.size() - 1, (values.size() * 95) / 100)];
    stats.max_sec = values.back();
    out.emplace(category, stats);
  }
  return out;
}

std::string render_series(const std::vector<double>& values,
                          double t_end_seconds, std::size_t height,
                          std::size_t width, char mark) {
  if (values.empty()) return "(no data)\n";
  double maxv = 1.0;
  for (double v : values) maxv = std::max(maxv, v);
  // Proportional bucketing: column c averages points
  // [c*n/cols, (c+1)*n/cols), so any point count fills the full width.
  const std::size_t cols = std::min(width, values.size());
  auto bucket_mean = [&](std::size_t col) {
    const std::size_t begin = col * values.size() / cols;
    std::size_t end = (col + 1) * values.size() / cols;
    end = std::max(end, begin + 1);
    double sum = 0;
    for (std::size_t i = begin; i < end && i < values.size(); ++i) {
      sum += values[i];
    }
    return sum / static_cast<double>(end - begin);
  };
  std::string out;
  for (std::size_t row = 0; row < height; ++row) {
    const double threshold =
        maxv * static_cast<double>(height - row) / static_cast<double>(height);
    std::string line(cols, ' ');
    for (std::size_t col = 0; col < cols; ++col) {
      if (bucket_mean(col) >= threshold) line[col] = mark;
    }
    char label[32];
    std::snprintf(label, sizeof(label), "%8.0f |", threshold);
    out += label + line + "\n";
  }
  char footer[120];
  std::snprintf(footer, sizeof(footer), "         +%s\n          t=0 .. t=%.0fs\n",
                std::string(cols, '-').c_str(), t_end_seconds);
  out += footer;
  return out;
}

std::string render_concurrency(
    const std::vector<TaskTrace::ConcurrencyPoint>& series, std::size_t height,
    std::size_t width) {
  if (series.empty()) return "(no data)\n";
  std::int64_t maxv = 1;
  for (const auto& p : series) {
    maxv = std::max({maxv, p.running, p.waiting});
  }
  const std::size_t cols = std::min(width, series.size());

  auto sample = [&](std::size_t col, bool running) {
    // Proportional bucket average (any point count fills the width).
    const std::size_t begin = col * series.size() / cols;
    std::size_t end = (col + 1) * series.size() / cols;
    end = std::max(end, begin + 1);
    double sum = 0;
    std::size_t n = 0;
    for (std::size_t i = begin; i < end && i < series.size(); ++i, ++n) {
      sum += static_cast<double>(running ? series[i].running
                                         : series[i].waiting);
    }
    return n ? sum / static_cast<double>(n) : 0.0;
  };

  std::string out;
  for (std::size_t row = 0; row < height; ++row) {
    const double threshold = static_cast<double>(maxv) *
                             static_cast<double>(height - row) /
                             static_cast<double>(height);
    std::string line;
    for (std::size_t col = 0; col < cols; ++col) {
      const double r = sample(col, true);
      const double w = sample(col, false);
      char ch = ' ';
      if (r >= threshold && w >= threshold) {
        ch = '*';  // both
      } else if (r >= threshold) {
        ch = 'r';
      } else if (w >= threshold) {
        ch = 'w';
      }
      line += ch;
    }
    char label[32];
    std::snprintf(label, sizeof(label), "%7.0f |",
                  static_cast<double>(maxv) *
                      static_cast<double>(height - row) /
                      static_cast<double>(height));
    out += label + line + "\n";
  }
  char footer[128];
  std::snprintf(footer, sizeof(footer),
                "        +%s\n         t=0 .. t=%.0fs  (r=running, "
                "w=waiting, *=both)\n",
                std::string(cols, '-').c_str(),
                util::to_seconds(series.back().t));
  out += footer;
  return out;
}

}  // namespace hepvine::metrics
