// Per-task execution records and the derived views the paper plots:
//  * task-runtime distributions (Fig 8),
//  * running/waiting concurrency over time (Figs 12, 15),
//  * worker-occupancy charts (Fig 13).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/units.h"

namespace hepvine::metrics {

using util::Tick;

struct TaskRecord {
  std::int64_t task_id = -1;
  std::int32_t worker = -1;       // -1 = not placed
  Tick ready_at = 0;              // became dispatchable
  Tick dispatched_at = 0;         // sent to a worker
  Tick started_at = 0;            // began executing (deps staged)
  Tick finished_at = 0;           // result available to the manager
  bool failed = false;            // this attempt failed (e.g. preemption)
  std::string category;           // e.g. "process", "accumulate"

  [[nodiscard]] Tick exec_time() const noexcept {
    return finished_at - started_at;
  }
  [[nodiscard]] Tick turnaround() const noexcept {
    return finished_at - ready_at;
  }
};

class TaskTrace {
 public:
  void add(TaskRecord rec) { records_.push_back(std::move(rec)); }
  [[nodiscard]] const std::vector<TaskRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] std::size_t failures() const noexcept;

  /// Concurrency sample: how many tasks run / wait at time t.
  struct ConcurrencyPoint {
    Tick t = 0;
    std::int64_t running = 0;
    std::int64_t waiting = 0;  // ready but not yet started
  };

  /// Sample running/waiting counts every `step` ticks over [0, horizon].
  [[nodiscard]] std::vector<ConcurrencyPoint> concurrency_series(
      Tick step, Tick horizon) const;

  /// Peak number of simultaneously running tasks.
  [[nodiscard]] std::int64_t peak_concurrency() const;

  /// Fraction of [t0, t1] during which each worker ran at least one task;
  /// index = worker id. Workers never used have occupancy 0.
  [[nodiscard]] std::vector<double> worker_occupancy(std::int32_t workers,
                                                     Tick t0, Tick t1) const;

  /// Log-spaced histogram of successful-task execution times. Buckets are
  /// decades/sub-decades between `lo` and `hi` seconds.
  struct TimeBucket {
    double lo_sec = 0;
    double hi_sec = 0;
    std::uint64_t count = 0;
  };
  [[nodiscard]] std::vector<TimeBucket> exec_time_histogram(
      double lo_sec = 0.01, double hi_sec = 1000.0,
      int buckets_per_decade = 4) const;

  /// Render an ASCII bar chart of the execution-time histogram.
  [[nodiscard]] static std::string render_histogram(
      const std::vector<TimeBucket>& buckets, std::size_t width = 50);

  /// Render worker occupancy as an ASCII strip (one char per worker group).
  [[nodiscard]] static std::string render_occupancy(
      const std::vector<double>& occupancy, std::size_t width = 64);

  [[nodiscard]] std::string to_csv() const;

  /// Execution-time statistics for one task category.
  struct CategoryStats {
    std::size_t count = 0;
    double mean_sec = 0;
    double median_sec = 0;
    double p95_sec = 0;
    double max_sec = 0;
  };

  /// Per-category statistics over successful records.
  [[nodiscard]] std::map<std::string, CategoryStats> category_stats() const;

 private:
  std::vector<TaskRecord> records_;
};

/// Render a two-series (running / waiting) ASCII timeline.
[[nodiscard]] std::string render_concurrency(
    const std::vector<TaskTrace::ConcurrencyPoint>& series,
    std::size_t height = 12, std::size_t width = 72);

/// Render a single series (e.g. running tasks only) on its own scale.
[[nodiscard]] std::string render_series(const std::vector<double>& values,
                                        double t_end_seconds,
                                        std::size_t height = 10,
                                        std::size_t width = 72,
                                        char mark = '*');

}  // namespace hepvine::metrics
