// Pairwise data-transfer accounting (paper Fig 7).
//
// Rows/columns are transfer endpoints: index 0 is the manager, 1..N are
// workers, and an optional extra index is the shared filesystem. Cell
// (src, dst) accumulates bytes moved src→dst. The ASCII heatmap renderer
// reproduces the paper's Fig 7 visual: Work Queue lights up row/column 0
// only; TaskVine with peer transfers spreads load across the off-diagonal.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hepvine::metrics {

class TransferMatrix {
 public:
  TransferMatrix() = default;
  explicit TransferMatrix(std::size_t endpoints)
      : n_(endpoints), cells_(endpoints * endpoints, 0) {}

  [[nodiscard]] std::size_t endpoints() const noexcept { return n_; }

  void record(std::size_t src, std::size_t dst, std::uint64_t bytes) {
    if (src < n_ && dst < n_) cells_[src * n_ + dst] += bytes;
  }

  [[nodiscard]] std::uint64_t at(std::size_t src, std::size_t dst) const {
    return (src < n_ && dst < n_) ? cells_[src * n_ + dst] : 0;
  }

  [[nodiscard]] std::uint64_t total() const;
  [[nodiscard]] std::uint64_t row_total(std::size_t src) const;
  [[nodiscard]] std::uint64_t col_total(std::size_t dst) const;

  /// Largest single src→dst cell.
  [[nodiscard]] std::uint64_t max_pair() const;
  /// Sum of cells with src and dst both in [lo, hi_exclusive).
  [[nodiscard]] std::uint64_t between(std::size_t lo,
                                      std::size_t hi_exclusive) const;
  /// Bytes into/out of endpoint 0 (the manager, by convention).
  [[nodiscard]] std::uint64_t manager_bytes() const;
  /// Bytes between worker pairs. Convention: endpoint 0 is the manager and
  /// the last endpoint is the shared filesystem, so workers are 1..n-2.
  [[nodiscard]] std::uint64_t peer_bytes() const;

  /// Render an ASCII heatmap downsampled to at most `cells` buckets per
  /// axis. Intensity characters scale with log(bytes).
  [[nodiscard]] std::string render_heatmap(std::size_t cells = 32) const;

  /// Dump as CSV: src,dst,bytes (nonzero cells only).
  [[nodiscard]] std::string to_csv() const;

 private:
  std::size_t n_ = 0;
  std::vector<std::uint64_t> cells_;
};

}  // namespace hepvine::metrics
