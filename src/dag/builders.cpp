#include "dag/builders.h"

#include <algorithm>
#include <stdexcept>

namespace hepvine::dag {

namespace {

TaskId add_reduce_node(TaskGraph& graph, std::vector<TaskId> inputs,
                       const ReduceSpec& spec) {
  std::uint64_t in_bytes = 0;
  for (TaskId dep : inputs) {
    in_bytes += graph.task(dep).spec.output_bytes;
  }
  TaskSpec task;
  task.category = spec.category;
  task.function = spec.function;
  task.fn = spec.merge;
  task.cpu_seconds = spec.cpu_seconds_fixed +
                     spec.cpu_seconds_per_input *
                         static_cast<double>(inputs.size());
  task.output_bytes = std::max(
      spec.output_bytes_min,
      static_cast<std::uint64_t>(static_cast<double>(in_bytes) *
                                 spec.output_scale));
  task.memory_bytes = spec.memory_bytes;
  task.deps = std::move(inputs);
  return graph.add_task(std::move(task));
}

}  // namespace

TaskId add_single_reduction(TaskGraph& graph,
                            const std::vector<TaskId>& inputs,
                            const ReduceSpec& spec) {
  if (inputs.empty()) throw std::invalid_argument("reduction over no inputs");
  return add_reduce_node(graph, inputs, spec);
}

TaskId add_tree_reduction(TaskGraph& graph, const std::vector<TaskId>& inputs,
                          std::size_t arity, const ReduceSpec& spec) {
  if (inputs.empty()) throw std::invalid_argument("reduction over no inputs");
  if (arity < 2) throw std::invalid_argument("tree reduction arity must be >= 2");
  std::vector<TaskId> level = inputs;
  while (level.size() > 1) {
    std::vector<TaskId> next;
    next.reserve((level.size() + arity - 1) / arity);
    for (std::size_t i = 0; i < level.size(); i += arity) {
      const std::size_t end = std::min(i + arity, level.size());
      std::vector<TaskId> group(level.begin() + static_cast<std::ptrdiff_t>(i),
                                level.begin() + static_cast<std::ptrdiff_t>(end));
      if (group.size() == 1) {
        // A lone leftover propagates without a merge task.
        next.push_back(group.front());
      } else {
        next.push_back(add_reduce_node(graph, std::move(group), spec));
      }
    }
    level = std::move(next);
  }
  return level.front();
}

std::size_t choose_reduction_arity(std::uint64_t partial_bytes,
                                   std::uint64_t worker_disk_bytes,
                                   std::size_t n_partials,
                                   double budget_fraction) {
  if (n_partials < 2) return 2;
  const double budget =
      static_cast<double>(worker_disk_bytes) * budget_fraction;
  // arity inputs + 1 output colocate on the reducing worker.
  std::size_t arity = 2;
  if (partial_bytes > 0) {
    const double max_files = budget / static_cast<double>(partial_bytes);
    if (max_files > 3.0) {
      arity = static_cast<std::size_t>(max_files) - 1;
    }
  } else {
    arity = n_partials;
  }
  arity = std::max<std::size_t>(arity, 2);
  return std::min(arity, n_partials);
}

std::size_t tree_reduction_task_count(std::size_t n, std::size_t arity) {
  if (n <= 1 || arity < 2) return 0;
  std::size_t count = 0;
  while (n > 1) {
    std::size_t groups = 0;
    std::size_t next = 0;
    for (std::size_t i = 0; i < n; i += arity) {
      const std::size_t size = std::min(arity, n - i);
      if (size == 1) {
        next += 1;
      } else {
        groups += 1;
        next += 1;
      }
    }
    count += groups;
    n = next;
  }
  return count;
}

}  // namespace hepvine::dag
