#include "dag/task_graph.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace hepvine::dag {

TaskId TaskGraph::add_task(TaskSpec spec) {
  const auto id = static_cast<TaskId>(tasks_.size());
  for (TaskId dep : spec.deps) {
    if (dep < 0 || dep >= id) {
      throw std::invalid_argument(
          "task dependency must reference an existing task (got " +
          std::to_string(dep) + " for task " + std::to_string(id) + ")");
    }
  }
  for (data::FileId f : spec.input_files) {
    if (f < 0 || static_cast<std::size_t>(f) >= catalog_.size()) {
      throw std::invalid_argument("unknown input file id " +
                                  std::to_string(f));
    }
  }

  Task task;
  task.id = id;
  task.output_file =
      catalog_.add(spec.category + "-out-" + std::to_string(id),
                   data::FileKind::kIntermediate, spec.output_bytes,
                   static_cast<std::uint64_t>(id));
  task.spec = std::move(spec);
  for (TaskId dep : task.spec.deps) {
    tasks_[static_cast<std::size_t>(dep)].dependents.push_back(id);
  }
  tasks_.push_back(std::move(task));
  return id;
}

std::vector<TaskId> TaskGraph::sinks() const {
  std::vector<TaskId> out;
  for (const auto& t : tasks_) {
    if (t.dependents.empty()) out.push_back(t.id);
  }
  return out;
}

std::vector<TaskId> TaskGraph::roots() const {
  std::vector<TaskId> out;
  for (const auto& t : tasks_) {
    if (t.spec.deps.empty()) out.push_back(t.id);
  }
  return out;
}

std::vector<TaskId> TaskGraph::topo_order() const {
  // Ids ascending are a valid topological order by construction; verify the
  // invariant anyway so corruption is caught loudly.
  std::vector<TaskId> order;
  order.reserve(tasks_.size());
  for (const auto& t : tasks_) {
    for (TaskId dep : t.spec.deps) {
      if (dep >= t.id) throw std::logic_error("task graph not topological");
    }
    order.push_back(t.id);
  }
  return order;
}

double TaskGraph::critical_path_seconds() const {
  std::vector<double> longest(tasks_.size(), 0.0);
  double best = 0.0;
  for (const auto& t : tasks_) {
    double start = 0.0;
    for (TaskId dep : t.spec.deps) {
      start = std::max(start, longest[static_cast<std::size_t>(dep)]);
    }
    longest[static_cast<std::size_t>(t.id)] = start + t.spec.cpu_seconds;
    best = std::max(best, longest[static_cast<std::size_t>(t.id)]);
  }
  return best;
}

double TaskGraph::total_cpu_seconds() const {
  double total = 0.0;
  for (const auto& t : tasks_) total += t.spec.cpu_seconds;
  return total;
}

std::map<std::string, std::size_t> TaskGraph::category_counts() const {
  std::map<std::string, std::size_t> counts;
  for (const auto& t : tasks_) counts[t.spec.category] += 1;
  return counts;
}

std::uint64_t TaskGraph::modeled_intermediate_bytes() const {
  std::uint64_t total = 0;
  for (const auto& t : tasks_) total += t.spec.output_bytes;
  return total;
}

}  // namespace hepvine::dag
