#include "dag/export.h"

#include <array>
#include <map>

#include "util/hash.h"
#include "util/units.h"

namespace hepvine::dag {

namespace {

const char* category_color(const std::string& category) {
  static constexpr std::array<const char*, 6> kPalette = {
      "lightblue", "lightgreen", "salmon", "gold", "plum", "lightgray"};
  const auto h = util::hash_bytes(category);
  return kPalette[h % kPalette.size()];
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string to_dot(const TaskGraph& graph, const DotOptions& options) {
  std::string out = "digraph workflow {\n  rankdir=TB;\n  node [shape=box];\n";
  const std::size_t limit = std::min(options.max_tasks, graph.size());
  for (std::size_t i = 0; i < limit; ++i) {
    const Task& task = graph.task(static_cast<TaskId>(i));
    out += "  t" + std::to_string(task.id) + " [label=\"" +
           escape(task.spec.category) + " #" + std::to_string(task.id) +
           "\"";
    if (options.color_by_category) {
      out += ", style=filled, fillcolor=";
      out += category_color(task.spec.category);
    }
    out += "];\n";
    for (TaskId dep : task.spec.deps) {
      if (static_cast<std::size_t>(dep) < limit) {
        out += "  t" + std::to_string(dep) + " -> t" +
               std::to_string(task.id) + ";\n";
      }
    }
    if (options.show_input_files) {
      for (data::FileId f : task.spec.input_files) {
        out += "  f" + std::to_string(f) +
               " [shape=note, label=\"" +
               escape(graph.catalog().get(f).name) + "\"];\n";
        out += "  f" + std::to_string(f) + " -> t" +
               std::to_string(task.id) + ";\n";
      }
    }
  }
  if (limit < graph.size()) {
    out += "  truncated [shape=plaintext, label=\"... " +
           std::to_string(graph.size() - limit) + " more tasks\"];\n";
  }
  out += "}\n";
  return out;
}

std::string to_json_summary(const TaskGraph& graph) {
  std::map<std::string, std::size_t> counts = graph.category_counts();
  std::string out = "{\n";
  out += "  \"tasks\": " + std::to_string(graph.size()) + ",\n";
  out += "  \"roots\": " + std::to_string(graph.roots().size()) + ",\n";
  out += "  \"sinks\": " + std::to_string(graph.sinks().size()) + ",\n";
  out += "  \"files\": " + std::to_string(graph.catalog().size()) + ",\n";
  out += "  \"input_bytes\": " + std::to_string(graph.input_bytes()) + ",\n";
  out += "  \"intermediate_bytes\": " +
         std::to_string(graph.modeled_intermediate_bytes()) + ",\n";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", graph.critical_path_seconds());
  out += std::string("  \"critical_path_seconds\": ") + buf + ",\n";
  std::snprintf(buf, sizeof(buf), "%.3f", graph.total_cpu_seconds());
  out += std::string("  \"total_cpu_seconds\": ") + buf + ",\n";
  out += "  \"categories\": {";
  bool first = true;
  for (const auto& [name, count] : counts) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + escape(name) + "\": " + std::to_string(count);
  }
  out += "}\n}\n";
  return out;
}

}  // namespace hepvine::dag
