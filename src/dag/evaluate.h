// Serial (in-process) evaluation of a task graph: the reference executor.
//
// Every compute closure is pure, so evaluating the graph directly — no
// cluster, no scheduler — yields the ground-truth results that any
// distributed execution must reproduce bit-for-bit. Tests and examples use
// this to validate scheduler output.
#pragma once

#include <map>

#include "dag/task_graph.h"

namespace hepvine::dag {

/// Evaluate all tasks in topological order; returns results of sink tasks.
[[nodiscard]] std::map<TaskId, ValuePtr> evaluate_serially(
    const TaskGraph& graph);

}  // namespace hepvine::dag
