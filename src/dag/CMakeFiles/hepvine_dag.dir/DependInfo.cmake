
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dag/builders.cpp" "src/dag/CMakeFiles/hepvine_dag.dir/builders.cpp.o" "gcc" "src/dag/CMakeFiles/hepvine_dag.dir/builders.cpp.o.d"
  "/root/repo/src/dag/evaluate.cpp" "src/dag/CMakeFiles/hepvine_dag.dir/evaluate.cpp.o" "gcc" "src/dag/CMakeFiles/hepvine_dag.dir/evaluate.cpp.o.d"
  "/root/repo/src/dag/export.cpp" "src/dag/CMakeFiles/hepvine_dag.dir/export.cpp.o" "gcc" "src/dag/CMakeFiles/hepvine_dag.dir/export.cpp.o.d"
  "/root/repo/src/dag/task_graph.cpp" "src/dag/CMakeFiles/hepvine_dag.dir/task_graph.cpp.o" "gcc" "src/dag/CMakeFiles/hepvine_dag.dir/task_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/data/CMakeFiles/hepvine_data.dir/DependInfo.cmake"
  "/root/repo/src/util/CMakeFiles/hepvine_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
