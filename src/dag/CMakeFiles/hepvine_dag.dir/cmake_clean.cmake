file(REMOVE_RECURSE
  "CMakeFiles/hepvine_dag.dir/builders.cpp.o"
  "CMakeFiles/hepvine_dag.dir/builders.cpp.o.d"
  "CMakeFiles/hepvine_dag.dir/evaluate.cpp.o"
  "CMakeFiles/hepvine_dag.dir/evaluate.cpp.o.d"
  "CMakeFiles/hepvine_dag.dir/export.cpp.o"
  "CMakeFiles/hepvine_dag.dir/export.cpp.o.d"
  "CMakeFiles/hepvine_dag.dir/task_graph.cpp.o"
  "CMakeFiles/hepvine_dag.dir/task_graph.cpp.o.d"
  "libhepvine_dag.a"
  "libhepvine_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hepvine_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
