file(REMOVE_RECURSE
  "libhepvine_dag.a"
)
