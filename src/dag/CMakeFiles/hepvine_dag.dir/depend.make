# Empty dependencies file for hepvine_dag.
# This may be replaced when dependencies are built.
