// The task graph (DAG manager layer of the paper's stack, Section II-B).
//
// A TaskGraph owns a FileCatalog plus a set of tasks. Each task consumes
// the outputs of its dependency tasks and any number of dataset input
// files, runs a pure compute closure, and produces one output file whose
// modeled size is declared up front. The graph is acyclic by construction:
// a task may only depend on already-registered tasks.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "data/file_catalog.h"
#include "dag/value.h"
#include "util/units.h"

namespace hepvine::dag {

using TaskId = std::int64_t;
inline constexpr TaskId kInvalidTask = -1;

struct TaskSpec {
  /// Display/trace category, e.g. "preprocess", "process", "accumulate".
  std::string category = "task";
  /// Name of the (remote) function this task invokes. Tasks sharing a
  /// function share serialized bodies and serverless library slots.
  std::string function = "fn";
  /// Upstream tasks whose outputs this task consumes (in order).
  std::vector<TaskId> deps;
  /// Dataset input files read from shared storage (in addition to deps).
  std::vector<data::FileId> input_files;
  /// Pure computation over dependency values.
  ComputeFn fn;
  /// Modeled CPU time at unit node speed.
  double cpu_seconds = 1.0;
  /// Modeled size of the produced output file.
  std::uint64_t output_bytes = 1 * util::kMB;
  /// Peak working memory.
  std::uint64_t memory_bytes = 2 * util::kGB;
};

struct Task {
  TaskId id = kInvalidTask;
  TaskSpec spec;
  data::FileId output_file = data::kInvalidFile;
  std::vector<TaskId> dependents;  // reverse edges, filled by add_task
};

class TaskGraph {
 public:
  TaskGraph() = default;
  TaskGraph(TaskGraph&&) = default;
  TaskGraph& operator=(TaskGraph&&) = default;

  /// Register a dataset input file in the graph's catalog.
  data::FileId add_input_file(std::string name, std::uint64_t bytes,
                              std::uint64_t content_seed = 0) {
    return catalog_.add(std::move(name), data::FileKind::kDatasetInput, bytes,
                        content_seed);
  }

  /// Add a task. All deps must already exist; throws std::invalid_argument
  /// otherwise (this is what keeps the graph acyclic).
  TaskId add_task(TaskSpec spec);

  [[nodiscard]] std::size_t size() const noexcept { return tasks_.size(); }
  [[nodiscard]] const Task& task(TaskId id) const {
    return tasks_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] Task& task(TaskId id) {
    return tasks_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const std::vector<Task>& tasks() const noexcept {
    return tasks_;
  }
  [[nodiscard]] data::FileCatalog& catalog() noexcept { return catalog_; }
  [[nodiscard]] const data::FileCatalog& catalog() const noexcept {
    return catalog_;
  }

  /// Tasks with no dependents (workflow results).
  [[nodiscard]] std::vector<TaskId> sinks() const;
  /// Tasks with no dependencies (immediately runnable).
  [[nodiscard]] std::vector<TaskId> roots() const;

  /// Topological order (ids ascending already satisfies it by construction,
  /// but this validates the invariant and is what executors iterate).
  [[nodiscard]] std::vector<TaskId> topo_order() const;

  /// Length of the critical path in modeled CPU-seconds.
  [[nodiscard]] double critical_path_seconds() const;

  /// Sum of modeled CPU-seconds over all tasks.
  [[nodiscard]] double total_cpu_seconds() const;

  /// Number of tasks per category.
  [[nodiscard]] std::map<std::string, std::size_t> category_counts() const;

  /// Bytes of dataset input consumed (each distinct input file counted
  /// once).
  [[nodiscard]] std::uint64_t input_bytes() const {
    return catalog_.total_bytes(data::FileKind::kDatasetInput);
  }

  /// Modeled bytes of intermediate data produced by all tasks.
  [[nodiscard]] std::uint64_t modeled_intermediate_bytes() const;

 private:
  data::FileCatalog catalog_;
  std::vector<Task> tasks_;
};

}  // namespace hepvine::dag
