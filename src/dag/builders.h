// Graph-construction helpers mirroring how Coffea/Dask build HEP analysis
// graphs: a wide "map" phase applying a processor to every data chunk,
// followed by an accumulation phase merging partial histograms.
//
// Accumulation is where the paper's Fig 11 lives: a single-node reduction
// pulls every partial result onto one worker (overflowing its cache at
// scale), while a tree reduction — valid because histogram merging is
// commutative and associative — keeps per-worker storage bounded.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dag/task_graph.h"

namespace hepvine::dag {

/// Parameters of one reduction layer/node.
struct ReduceSpec {
  std::string category = "accumulate";
  std::string function = "accumulate";
  /// Merge closure: combines any number of dependency values into one.
  ComputeFn merge;
  /// Modeled CPU cost: fixed part plus a per-input part.
  double cpu_seconds_fixed = 0.5;
  double cpu_seconds_per_input = 0.05;
  /// Modeled output size: either fixed, or the sum of the inputs' modeled
  /// sizes scaled by `output_scale` (whichever is larger).
  std::uint64_t output_bytes_min = 1 * util::kMB;
  double output_scale = 1.0;
  std::uint64_t memory_bytes = 4 * util::kGB;
};

/// Reduce all `inputs` with a single task (the original RS-TriPhoton
/// topology). Returns the reduction task's id.
TaskId add_single_reduction(TaskGraph& graph, const std::vector<TaskId>& inputs,
                            const ReduceSpec& spec);

/// Reduce `inputs` with a k-ary tree (`arity` >= 2). Returns the root
/// task's id. With arity == inputs.size() this degenerates to a single
/// reduction.
TaskId add_tree_reduction(TaskGraph& graph, const std::vector<TaskId>& inputs,
                          std::size_t arity, const ReduceSpec& spec);

/// Number of reduction tasks a k-ary tree over n inputs creates.
[[nodiscard]] std::size_t tree_reduction_task_count(std::size_t n,
                                                    std::size_t arity);

/// Pick a reduction arity automatically: the widest fan-in whose colocated
/// data (arity inputs + one output of `partial_bytes`) stays within
/// `budget_fraction` of a worker's scratch disk. Wide fan-in minimizes tree
/// depth (latency); the disk budget is the constraint Fig 11 shows being
/// violated. Result is clamped to [2, n].
[[nodiscard]] std::size_t choose_reduction_arity(
    std::uint64_t partial_bytes, std::uint64_t worker_disk_bytes,
    std::size_t n_partials, double budget_fraction = 0.25);

}  // namespace hepvine::dag
