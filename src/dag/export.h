// Graph export: Graphviz DOT for visual inspection and a compact JSON
// summary for tooling. Useful when debugging workload shapes (e.g. the
// Fig 11 single-node vs tree topologies) and for documentation.
#pragma once

#include <string>

#include "dag/task_graph.h"

namespace hepvine::dag {

struct DotOptions {
  /// Emit at most this many task nodes (giant graphs truncate with a note).
  std::size_t max_tasks = 500;
  /// Include dataset-input file nodes.
  bool show_input_files = false;
  /// Color nodes by category.
  bool color_by_category = true;
};

/// Render the graph in Graphviz DOT format.
[[nodiscard]] std::string to_dot(const TaskGraph& graph,
                                 const DotOptions& options = {});

/// Compact JSON summary: counts, bytes, depth, per-category statistics.
[[nodiscard]] std::string to_json_summary(const TaskGraph& graph);

}  // namespace hepvine::dag
