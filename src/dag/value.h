// Type-erased task payloads.
//
// Real results flow through the simulation: every task carries a compute
// closure that consumes the Values of its dependencies and produces a new
// Value. The scheduler never inspects payloads — it sees only byte sizes —
// but tests do: the final physics histogram must be identical no matter
// which scheduler, stack, failure pattern, or DAG rewrite produced it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "util/hash.h"

namespace hepvine::dag {

class Value {
 public:
  virtual ~Value() = default;

  /// Serialized size in bytes (drives modeled transfer/storage costs).
  [[nodiscard]] virtual std::uint64_t byte_size() const = 0;

  /// Content digest (equality of results across runs/schedulers).
  [[nodiscard]] virtual util::Digest128 digest() const = 0;
};

using ValuePtr = std::shared_ptr<const Value>;

/// A task's computation: dependency results in, result out. Must be pure —
/// re-execution after a worker failure must reproduce the identical value.
using ComputeFn = std::function<ValuePtr(const std::vector<ValuePtr>&)>;

/// Trivial scalar Value for tests and examples.
class ScalarValue final : public Value {
 public:
  explicit ScalarValue(double v) : v_(v) {}
  [[nodiscard]] double get() const noexcept { return v_; }
  [[nodiscard]] std::uint64_t byte_size() const override { return 8; }
  [[nodiscard]] util::Digest128 digest() const override {
    return util::Hasher(0x5ca1a8).update_double(v_).digest();
  }

 private:
  double v_;
};

}  // namespace hepvine::dag
