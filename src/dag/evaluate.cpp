#include "dag/evaluate.h"

#include <vector>

namespace hepvine::dag {

std::map<TaskId, ValuePtr> evaluate_serially(const TaskGraph& graph) {
  std::vector<ValuePtr> values(graph.size());
  for (TaskId id : graph.topo_order()) {
    const Task& task = graph.task(id);
    std::vector<ValuePtr> inputs;
    inputs.reserve(task.spec.deps.size());
    for (TaskId dep : task.spec.deps) {
      inputs.push_back(values[static_cast<std::size_t>(dep)]);
    }
    values[static_cast<std::size_t>(id)] =
        task.spec.fn ? task.spec.fn(inputs) : nullptr;
  }
  std::map<TaskId, ValuePtr> results;
  for (TaskId sink : graph.sinks()) {
    results[sink] = values[static_cast<std::size_t>(sink)];
  }
  return results;
}

}  // namespace hepvine::dag
