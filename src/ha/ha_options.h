// Manager high-availability knobs and run-state, shared by every scheduler
// backend through exec::RunOptions / exec::RunReport.
//
// Kept header-only and dependency-light (util only) because exec/scheduler.h
// includes it; the snapshot/recovery machinery itself lives in the
// hepvine_ha library (snapshot.h, recovery.h, factory.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.h"

namespace hepvine::ha {

using util::Tick;

/// Elastic worker-pool autoscaling, modeled on `vine_factory`: a sidecar
/// that watches the manager's queue depth and grows/shrinks the submitted
/// worker pool between min and max. Disabled (max_workers == 0) the run
/// starts every provisioned worker up front, exactly as before.
struct FactorySpec {
  std::uint32_t min_workers = 1;
  /// 0 disables the factory entirely.
  std::uint32_t max_workers = 0;
  /// Demand model: one worker per this many queued-or-running tasks.
  std::uint32_t tasks_per_worker = 4;
  /// Cadence of the factory's evaluation loop.
  Tick evaluation_interval = 5 * util::kSec;

  [[nodiscard]] bool enabled() const { return max_workers > 0; }
};

/// Manager checkpointing + recovery-cost model. The snapshot is the
/// serialized logical scheduler state (ha/snapshot.h); recovery restores
/// the latest one and replays the txn tail through the event engine
/// (ha/recovery.h). Costs are modeled, charged against the manager's
/// serial control loop so they show up in the blame ledger.
struct HaOptions {
  /// Snapshot cadence; 0 disables checkpointing (default: byte-identical
  /// behaviour to a pre-HA run).
  Tick snapshot_interval = 0;
  /// Manager busy time per snapshot: base + per-byte serialization cost.
  Tick snapshot_base_cost = 2 * util::kMsec;
  double snapshot_cost_per_byte_us = 0.0005;
  /// Recovery model: restoring a snapshot costs base + per-byte, replaying
  /// the txn tail costs per-line. Recovery time must scale with the tail
  /// (the work since the last checkpoint), never the whole campaign.
  Tick restore_base_cost = 50 * util::kMsec;
  double restore_cost_per_byte_us = 0.001;
  double replay_cost_per_line_us = 20.0;
  FactorySpec factory;

  [[nodiscard]] bool snapshots_enabled() const {
    return snapshot_interval > 0;
  }

  [[nodiscard]] Tick snapshot_cost(std::uint64_t bytes) const {
    return snapshot_base_cost +
           static_cast<Tick>(snapshot_cost_per_byte_us *
                             static_cast<double>(bytes));
  }
};

/// One checkpoint: the serialized state text plus its identity. `digest`
/// also appears on the run's `SNAPSHOT seq WRITE bytes digest` txn line,
/// which is the anchor recovery cuts the txn tail at.
struct SnapshotRecord {
  Tick tick = 0;
  std::uint64_t seq = 0;
  std::uint64_t bytes = 0;
  std::string digest;
  std::string state;
};

/// What HA machinery observed during one run, carried in RunReport.
struct HaRunState {
  bool manager_crashed = false;
  Tick crash_tick = 0;
  std::vector<SnapshotRecord> snapshots;
  // Factory activity (zero when the factory is disabled):
  std::uint32_t factory_grow_events = 0;
  std::uint32_t factory_shrink_events = 0;
  std::uint32_t workers_started = 0;
  std::uint32_t workers_released = 0;
};

}  // namespace hepvine::ha
