// Manager crash recovery: restore the latest snapshot, replay the txn
// tail, prove bit-identity.
//
// The simulation's whole determinism contract (seeded RNG streams,
// (time,seq)-ordered events, vine_lint's static rules) exists so that a
// run is a pure function of its inputs. Recovery exploits that: a crashed
// manager cannot hand its live closures to a successor, so the successor
// re-executes the campaign deterministically and we *verify* rather than
// assume that it passes through the crashed manager's checkpoint —
//
//   1. RESTORE  load the latest SnapshotRecord the crashed run produced;
//               the rerun must reach the same tick with a byte-identical
//               serialized state (digest compare).
//   2. REPLAY   the txn tail — every journal line the crashed manager
//               wrote after that snapshot — must be reproduced verbatim by
//               the rerun (the crash-injection FAULT line and the dying
//               manager's END line excluded, since the uninterrupted
//               timeline does not contain the crash itself).
//   3. DONE     the rerun continues past the crash tick to completion;
//               callers then compare run_digest() against an uninterrupted
//               baseline for end-to-end bit-identity.
//
// Recovery *time* is modeled from HaOptions: restoring costs
// base + per-byte of snapshot, replaying costs per-line of tail — so it
// scales with the work since the last checkpoint, never with campaign
// length (the bench_ha_recovery acceptance axis).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "exec/scheduler.h"
#include "ha/ha_options.h"
#include "util/hash.h"

namespace hepvine::ha {

struct RecoveryOutcome {
  /// Snapshot converged, tail replayed verbatim, rerun completed.
  bool recovered = false;
  bool snapshot_converged = false;
  bool tail_identical = false;

  Tick snapshot_tick = 0;
  std::uint64_t snapshot_seq = 0;
  std::uint64_t snapshot_bytes = 0;
  std::size_t tail_lines = 0;

  /// Modeled recovery time (HaOptions cost model).
  Tick restore_cost = 0;
  Tick replay_cost = 0;
  [[nodiscard]] Tick recovery_cost() const {
    return restore_cost + replay_cost;
  }

  /// RECOVER-verb journal of the protocol (txn-log line format).
  std::string journal;
  /// First verification failure, empty on success.
  std::string error;
  /// The recovered (re-executed) run.
  exec::RunReport report;
};

/// The crash-free schedule a recovering manager runs under: identical to
/// the crashed run's except the kManagerCrash events are removed. Removing
/// an engine event shifts every later sequence number uniformly, so
/// pairwise event order — and therefore the whole txn stream up to the
/// crash tick — is unperturbed.
[[nodiscard]] fault::FaultSchedule strip_manager_crash(
    const fault::FaultSchedule& schedule);

/// Digest of everything a run observably produced: outcome, makespan,
/// attempt/failure/recovery counters, sink result digests, and the full
/// retained txn text. Two runs with equal digests are operationally
/// indistinguishable.
[[nodiscard]] util::Digest128 run_digest(const exec::RunReport& report);

/// Recover from `crashed` (a report with ha.manager_crashed set) by
/// re-executing via `rerun` — a callback that runs the same graph, same
/// cluster spec, same options with strip_manager_crash applied. Verifies
/// snapshot convergence and tail identity; the outcome carries the
/// completed rerun's report.
[[nodiscard]] RecoveryOutcome recover(
    const exec::RunReport& crashed, const HaOptions& ha,
    const std::function<exec::RunReport()>& rerun);

}  // namespace hepvine::ha
