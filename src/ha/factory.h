// Elastic worker-pool autoscaler, modeled on CCTools' `vine_factory`.
//
// The real factory is a sidecar process that polls the manager's queue
// status and submits or removes batch workers to keep the pool sized to
// demand between --min-workers and --max-workers. Here it is an engine
// component: a recurring evaluation event reads the scheduler's queue
// depth through hooks, computes the demand target, and asks the scheduler
// to start parked batch slots (grow) or release idle connected workers
// (shrink). All decisions are deterministic functions of simulated state,
// so factory-driven elasticity replays bit-identically like everything
// else.
#pragma once

#include <cstdint>
#include <functional>

#include "ha/ha_options.h"
#include "sim/engine.h"

namespace hepvine::ha {

class Factory {
 public:
  struct Hooks {
    /// Tasks queued or in flight — the demand signal.
    std::function<std::size_t()> queue_depth;
    /// Workers currently connected to the manager.
    std::function<std::uint32_t()> connected_workers;
    /// Start up to n parked workers; returns how many were started.
    std::function<std::uint32_t(std::uint32_t n)> grow;
    /// Release up to n idle workers; returns how many were released.
    std::function<std::uint32_t(std::uint32_t n)> shrink;
  };

  Factory(sim::Engine& engine, const FactorySpec& spec, Hooks hooks);

  Factory(const Factory&) = delete;
  Factory& operator=(const Factory&) = delete;

  /// Begin the evaluation loop (first evaluation after one interval).
  void start();
  /// The run ended: pending evaluation events become no-ops.
  void stop() { stopped_ = true; }

  /// Demand target for a queue depth: ceil(depth / tasks_per_worker),
  /// clamped to [min_workers, max_workers]. Exposed for unit tests.
  [[nodiscard]] std::uint32_t target(std::size_t depth) const;

  [[nodiscard]] std::uint32_t grow_events() const { return grow_events_; }
  [[nodiscard]] std::uint32_t shrink_events() const {
    return shrink_events_;
  }
  [[nodiscard]] std::uint32_t workers_started() const {
    return workers_started_;
  }
  [[nodiscard]] std::uint32_t workers_released() const {
    return workers_released_;
  }

 private:
  void evaluate();

  sim::Engine& engine_;
  FactorySpec spec_;
  Hooks hooks_;
  bool stopped_ = false;
  std::uint32_t grow_events_ = 0;
  std::uint32_t shrink_events_ = 0;
  std::uint32_t workers_started_ = 0;
  std::uint32_t workers_released_ = 0;
};

}  // namespace hepvine::ha
