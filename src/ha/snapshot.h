// ManagerSnapshot: serialize the manager's logical state to a canonical,
// digestable text form.
//
// The snapshot is the HA counterpart of the txn log's journal: everything
// the scheduler would need to stand a new manager up at the checkpoint
// tick — the task-state table, the replica table with pin/GC refcounts and
// incarnation guards, the in-flight flow set, the peer-slot ledger, the
// fault injector's cursors and the RNG stream positions. It deliberately
// does NOT capture engine closures (they hold `this` and cannot move
// between processes, in the simulation exactly as in the real manager);
// recovery therefore re-executes deterministically up to the checkpoint and
// proves convergence by digest instead of mutating live state
// (ha/recovery.h).
//
// The format is line-oriented and canonical — `## section` headers and
// `key=value` fields, emitted in a deterministic order by construction —
// so that two runs that agree on logical state produce byte-identical
// snapshots and a single 128-bit digest comparison decides convergence.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ha/ha_options.h"

namespace hepvine::ha {

class SnapshotBuilder {
 public:
  /// Open a `## name` section; subsequent fields belong to it.
  void section(const std::string& name);

  void field(const std::string& key, std::uint64_t value);
  void field_i(const std::string& key, std::int64_t value);
  void field_s(const std::string& key, const std::string& value);
  /// One RNG stream's four state words as a single hex field.
  void field_rng(const std::string& key,
                 const std::array<std::uint64_t, 4>& words);

  /// Seal the snapshot: digest the accumulated text and stamp identity.
  [[nodiscard]] SnapshotRecord finish(Tick tick, std::uint64_t seq) const;

 private:
  std::string text_;
};

/// Parse a snapshot's state text back into ("section.key", value) pairs in
/// emission order. Used by tests to assert that delicate invariants (pin
/// incarnation guards, peer-slot balance) survive the round trip, and by
/// recovery diagnostics.
[[nodiscard]] std::vector<std::pair<std::string, std::string>>
parse_snapshot(const std::string& state);

/// First value for `section.key` in `state`, or empty string.
[[nodiscard]] std::string snapshot_field(const std::string& state,
                                         const std::string& dotted_key);

}  // namespace hepvine::ha
