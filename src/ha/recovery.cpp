#include "ha/recovery.h"

#include <cinttypes>
#include <cstdio>
#include <vector>

#include "obs/txn_log.h"

namespace hepvine::ha {

namespace {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    lines.push_back(text.substr(pos, eol - pos));
    pos = eol + 1;
  }
  return lines;
}

/// The `SNAPSHOT seq WRITE ...` txn line `rec` produced — the tail anchor.
std::string anchor_line(const SnapshotRecord& rec) {
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "%" PRId64 " SNAPSHOT %" PRIu64 " WRITE %" PRIu64 " %s",
                rec.tick, rec.seq, rec.bytes, rec.digest.c_str());
  return buf;
}

/// The crash-injection record: present only in the crashed timeline, so
/// the tail comparison must not charge the rerun with reproducing it.
bool is_crash_injection(const std::string& line) {
  return line.find(" FAULT ") != std::string::npos &&
         line.find(" MANAGER_CRASH ") != std::string::npos;
}

bool is_manager_end(const std::string& line) {
  const std::string suffix = " MANAGER 0 END";
  return line.size() >= suffix.size() &&
         line.compare(line.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

std::size_t find_last(const std::vector<std::string>& lines,
                      const std::string& needle) {
  for (std::size_t i = lines.size(); i > 0; --i) {
    if (lines[i - 1] == needle) return i - 1;
  }
  return lines.size();
}

}  // namespace

fault::FaultSchedule strip_manager_crash(const fault::FaultSchedule& in) {
  fault::FaultSchedule out = in;
  out.events.clear();
  for (const fault::FaultEvent& ev : in.events) {
    if (ev.kind != fault::FaultKind::kManagerCrash) out.events.push_back(ev);
  }
  return out;
}

util::Digest128 run_digest(const exec::RunReport& report) {
  util::Hasher h;
  h.update(report.scheduler);
  h.update_u64(report.success ? 1 : 0);
  h.update_i64(report.makespan);
  h.update_u64(report.tasks_total);
  h.update_u64(report.task_attempts);
  h.update_u64(report.task_failures);
  h.update_u64(report.lineage_resets);
  h.update_u64(report.worker_preemptions);
  h.update_u64(report.worker_crashes);
  h.update_u64(report.cache_evictions);
  h.update_u64(report.cache_gc_drops);
  for (const auto& [task, value] : report.results) {
    h.update_i64(task);
    if (value != nullptr) {
      const util::Digest128 d = value->digest();
      h.update_u64(d.hi);
      h.update_u64(d.lo);
    }
  }
  if (report.observation != nullptr && report.observation->txn_enabled()) {
    h.update(report.observation->txn().text());
  }
  return h.digest();
}

RecoveryOutcome recover(const exec::RunReport& crashed, const HaOptions& ha,
                        const std::function<exec::RunReport()>& rerun) {
  RecoveryOutcome out;
  if (!crashed.ha.manager_crashed) {
    out.error = "recover() called on a run whose manager did not crash";
    return out;
  }
  if (crashed.ha.snapshots.empty()) {
    out.error =
        "no snapshot to restore: the manager crashed before the first "
        "checkpoint (HaOptions::snapshot_interval)";
    return out;
  }

  const SnapshotRecord& last = crashed.ha.snapshots.back();
  out.snapshot_tick = last.tick;
  out.snapshot_seq = last.seq;
  out.snapshot_bytes = last.bytes;
  out.restore_cost =
      ha.restore_base_cost +
      static_cast<Tick>(ha.restore_cost_per_byte_us *
                        static_cast<double>(last.bytes));

  // Re-execute the campaign (the caller strips the crash event). The rerun
  // IS the successor manager: deterministic replay carries it through the
  // checkpoint and on to completion.
  out.report = rerun();

  // --- 1. RESTORE: the rerun must pass through the checkpoint exactly.
  const SnapshotRecord* match = nullptr;
  for (const SnapshotRecord& rec : out.report.ha.snapshots) {
    if (rec.seq == last.seq) {
      match = &rec;
      break;
    }
  }
  if (match == nullptr) {
    out.error = "rerun never reached snapshot seq " +
                std::to_string(last.seq);
  } else if (match->tick != last.tick || match->digest != last.digest ||
             match->state != last.state) {
    out.error = "snapshot " + std::to_string(last.seq) +
                " diverged between crashed run and rerun (crashed digest " +
                last.digest + ", rerun digest " + match->digest + ")";
  } else {
    out.snapshot_converged = true;
  }

  // --- 2. REPLAY: the crashed run's post-snapshot journal tail must be
  // reproduced verbatim. The crash-injection FAULT line and the dying
  // manager's END line belong only to the crashed timeline and are cut.
  const bool crashed_txn_on =
      crashed.observation != nullptr && crashed.observation->txn_enabled();
  const bool rerun_txn_on = out.report.observation != nullptr &&
                            out.report.observation->txn_enabled();
  std::string tail_note;
  if (crashed_txn_on && rerun_txn_on && out.snapshot_converged) {
    const auto crashed_lines =
        split_lines(crashed.observation->txn().text());
    const auto rerun_lines =
        split_lines(out.report.observation->txn().text());
    const std::string anchor = anchor_line(last);
    const std::size_t c_at = find_last(crashed_lines, anchor);
    const std::size_t r_at = find_last(rerun_lines, anchor);
    if (c_at == crashed_lines.size() || r_at == rerun_lines.size()) {
      out.error = "snapshot anchor line rotated out of the txn ring; "
                  "raise ObsConfig::txn_ring_capacity";
    } else {
      std::vector<std::string> tail;
      for (std::size_t i = c_at + 1; i < crashed_lines.size(); ++i) {
        const std::string& line = crashed_lines[i];
        if (is_crash_injection(line)) continue;
        if (i + 1 == crashed_lines.size() && is_manager_end(line)) continue;
        tail.push_back(line);
      }
      out.tail_lines = tail.size();
      out.tail_identical = true;
      for (std::size_t i = 0; i < tail.size(); ++i) {
        const std::size_t j = r_at + 1 + i;
        if (j >= rerun_lines.size() || rerun_lines[j] != tail[i]) {
          out.tail_identical = false;
          out.error = "txn tail diverged at line " + std::to_string(i) +
                      " after snapshot " + std::to_string(last.seq) +
                      ": expected \"" + tail[i] + "\"";
          break;
        }
      }
    }
  } else if (out.snapshot_converged) {
    // No journal to replay against: state convergence is the only check.
    out.tail_identical = true;
    tail_note = " (txn log disabled; verified by state digest only)";
  }
  out.replay_cost = static_cast<Tick>(
      ha.replay_cost_per_line_us * static_cast<double>(out.tail_lines));

  out.recovered =
      out.snapshot_converged && out.tail_identical && out.report.success;

  // --- 3. journal the protocol in txn-line format.
  obs::TxnLog journal(64, "");
  Tick t = crashed.ha.crash_tick;
  journal.recover_phase(
      t, last.seq, "RESTORE",
      "snapshot_tick=" + std::to_string(last.tick) +
          " bytes=" + std::to_string(last.bytes) + " digest=" + last.digest +
          " converged=" + (out.snapshot_converged ? "1" : "0"));
  t += out.restore_cost;
  journal.recover_phase(
      t, last.seq, "REPLAY",
      "lines=" + std::to_string(out.tail_lines) +
          " identical=" + (out.tail_identical ? "1" : "0") + tail_note);
  t += out.replay_cost;
  journal.recover_phase(
      t, last.seq, "DONE",
      std::string("recovered=") + (out.recovered ? "1" : "0") +
          " recovery_cost_us=" + std::to_string(out.recovery_cost()));
  out.journal = journal.text();
  return out;
}

}  // namespace hepvine::ha
