file(REMOVE_RECURSE
  "CMakeFiles/hepvine_ha.dir/factory.cpp.o"
  "CMakeFiles/hepvine_ha.dir/factory.cpp.o.d"
  "CMakeFiles/hepvine_ha.dir/recovery.cpp.o"
  "CMakeFiles/hepvine_ha.dir/recovery.cpp.o.d"
  "CMakeFiles/hepvine_ha.dir/snapshot.cpp.o"
  "CMakeFiles/hepvine_ha.dir/snapshot.cpp.o.d"
  "libhepvine_ha.a"
  "libhepvine_ha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hepvine_ha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
