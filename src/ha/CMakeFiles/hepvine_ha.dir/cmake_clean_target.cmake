file(REMOVE_RECURSE
  "libhepvine_ha.a"
)
