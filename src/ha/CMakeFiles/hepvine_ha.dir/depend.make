# Empty dependencies file for hepvine_ha.
# This may be replaced when dependencies are built.
