#include "ha/snapshot.h"

#include <cinttypes>
#include <cstdio>

#include "util/hash.h"

namespace hepvine::ha {

void SnapshotBuilder::section(const std::string& name) {
  text_ += "## ";
  text_ += name;
  text_ += '\n';
}

void SnapshotBuilder::field(const std::string& key, std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  text_ += key;
  text_ += '=';
  text_ += buf;
  text_ += '\n';
}

void SnapshotBuilder::field_i(const std::string& key, std::int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  text_ += key;
  text_ += '=';
  text_ += buf;
  text_ += '\n';
}

void SnapshotBuilder::field_s(const std::string& key,
                              const std::string& value) {
  text_ += key;
  text_ += '=';
  text_ += value;
  text_ += '\n';
}

void SnapshotBuilder::field_rng(const std::string& key,
                                const std::array<std::uint64_t, 4>& words) {
  char buf[72];
  std::snprintf(buf, sizeof(buf),
                "%016" PRIx64 "%016" PRIx64 "%016" PRIx64 "%016" PRIx64,
                words[0], words[1], words[2], words[3]);
  field_s(key, buf);
}

SnapshotRecord SnapshotBuilder::finish(Tick tick, std::uint64_t seq) const {
  SnapshotRecord rec;
  rec.tick = tick;
  rec.seq = seq;
  rec.bytes = text_.size();
  rec.digest = util::digest128(text_).hex();
  rec.state = text_;
  return rec;
}

std::vector<std::pair<std::string, std::string>> parse_snapshot(
    const std::string& state) {
  std::vector<std::pair<std::string, std::string>> fields;
  std::string current;
  std::size_t pos = 0;
  while (pos < state.size()) {
    std::size_t eol = state.find('\n', pos);
    if (eol == std::string::npos) eol = state.size();
    const std::string line = state.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind("## ", 0) == 0) {
      current = line.substr(3);
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    fields.emplace_back(current + "." + line.substr(0, eq),
                        line.substr(eq + 1));
  }
  return fields;
}

std::string snapshot_field(const std::string& state,
                           const std::string& dotted_key) {
  for (const auto& [key, value] : parse_snapshot(state)) {
    if (key == dotted_key) return value;
  }
  return {};
}

}  // namespace hepvine::ha
