#include "ha/factory.h"

#include <algorithm>
#include <utility>

namespace hepvine::ha {

Factory::Factory(sim::Engine& engine, const FactorySpec& spec, Hooks hooks)
    : engine_(engine), spec_(spec), hooks_(std::move(hooks)) {}

void Factory::start() {
  engine_.schedule_after(spec_.evaluation_interval, [this] { evaluate(); });
}

std::uint32_t Factory::target(std::size_t depth) const {
  const std::uint32_t per =
      spec_.tasks_per_worker > 0 ? spec_.tasks_per_worker : 1;
  const std::size_t want = (depth + per - 1) / per;
  const auto clamped = static_cast<std::uint32_t>(
      std::min<std::size_t>(want, spec_.max_workers));
  return std::max(clamped, spec_.min_workers);
}

void Factory::evaluate() {
  if (stopped_) return;
  const std::size_t depth = hooks_.queue_depth ? hooks_.queue_depth() : 0;
  const std::uint32_t want = target(depth);
  const std::uint32_t have =
      hooks_.connected_workers ? hooks_.connected_workers() : 0;
  if (want > have && hooks_.grow) {
    const std::uint32_t started = hooks_.grow(want - have);
    if (started > 0) {
      grow_events_ += 1;
      workers_started_ += started;
    }
  } else if (want < have && hooks_.shrink) {
    const std::uint32_t released = hooks_.shrink(have - want);
    if (released > 0) {
      shrink_events_ += 1;
      workers_released_ += released;
    }
  }
  engine_.schedule_after(spec_.evaluation_interval, [this] { evaluate(); });
}

}  // namespace hepvine::ha
