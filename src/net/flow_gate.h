// Concurrency gate for transfer admission.
//
// Schedulers use gates to bound how many flows they keep simultaneously
// open against a contended endpoint (the manager's NIC, the shared
// filesystem's stream slots). This mirrors reality — managers serve
// transfers over a bounded socket set, filesystems over bounded stream
// slots — and keeps the flow-level network model efficient: rate
// recomputation costs O(active flows) per change.
//
// Usage: submit() a starter callback. When a slot frees, the starter runs
// and receives an opaque slot token (shared_ptr). The slot is held as long
// as any copy of the token lives; capture it in the flow's completion
// callback and the slot releases automatically on completion — or on
// cancellation, because cancelling a flow destroys its callback. Tokens
// co-own the gate's state, so they remain safe even if the FlowGate object
// itself is destroyed first.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

namespace hepvine::net {

class FlowGate {
 public:
  using SlotToken = std::shared_ptr<void>;
  using Starter = std::function<void(SlotToken)>;

  /// A limit of 0 means unbounded.
  explicit FlowGate(std::uint32_t limit)
      : state_(std::make_shared<State>(limit)) {}

  /// Run `fn` now if a slot is free, else queue it. `fn` receives the slot
  /// token; dropping all copies of the token frees the slot.
  void submit(Starter fn) {
    if (state_->limit == 0) {
      fn(SlotToken{});
      return;
    }
    state_->queue.push_back(std::move(fn));
    pump(state_);
  }

  [[nodiscard]] std::uint32_t active() const noexcept {
    return state_->active;
  }
  [[nodiscard]] std::size_t queued() const noexcept {
    return state_->queue.size();
  }

 private:
  struct State {
    explicit State(std::uint32_t lim) : limit(lim) {}
    std::uint32_t limit;
    std::uint32_t active = 0;
    bool pumping = false;
    std::deque<Starter> queue;
  };

  /// Admit starters while slots are free. Iterative with a reentrancy
  /// guard: a starter that drops its token synchronously (e.g. its fetch
  /// vanished) frees the slot mid-pump, and the loop condition simply
  /// re-admits — no recursion, no stack growth on long queues.
  static void pump(const std::shared_ptr<State>& state) {
    if (state->pumping) return;
    state->pumping = true;
    while (!state->queue.empty() && state->active < state->limit) {
      Starter next = std::move(state->queue.front());
      state->queue.pop_front();
      ++state->active;
      // The token co-owns the state and returns the slot on destruction
      // (flow completion, or cancellation destroying the callback).
      auto token = SlotToken(static_cast<void*>(state.get()),
                             [state](void*) {
                               --state->active;
                               pump(state);
                             });
      next(std::move(token));
    }
    state->pumping = false;
  }

  std::shared_ptr<State> state_;
};

}  // namespace hepvine::net
