// Flow-level network model with max-min fair bandwidth sharing.
//
// The cluster is modeled as a set of capacity-limited links (typically one
// uplink and one downlink per node NIC, plus an aggregate link for the
// shared filesystem). A transfer is a "flow" over a path of links. Whenever
// the set of active flows changes, per-flow rates are recomputed by
// progressive water-filling (the classic max-min fair allocation), progress
// is settled at the old rates, and each flow's completion event is
// rescheduled. Rate recomputation is batched per tick: any number of flow
// arrivals/departures at the same instant trigger a single recompute.
//
// Fault injection hooks: a flow can be killed mid-stream (`fail_flow`) or
// armed to fail once a byte offset has been carried (`arm_flow_fault`), and
// a link's effective capacity can be scaled by a factor (`set_link_scale`,
// used for shared-FS brownouts/outages). Killed flows never invoke `done`;
// the fail listener fires instead so the scheduler can retry.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "obs/stats_registry.h"
#include "sim/engine.h"
#include "util/units.h"

namespace hepvine::net {

using util::Bandwidth;
using util::Tick;

using LinkId = std::int32_t;
using FlowId = std::int64_t;

inline constexpr FlowId kInvalidFlow = -1;

/// Static description of one link.
struct LinkSpec {
  std::string name;
  Bandwidth capacity = 0;  // bytes/second
};

/// Cumulative per-link statistics.
struct LinkStats {
  std::uint64_t bytes_carried = 0;
  std::uint64_t flows_carried = 0;
};

class Network {
 public:
  explicit Network(sim::Engine& engine) : engine_(engine) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Register a link; returns its id.
  LinkId add_link(std::string name, Bandwidth capacity);

  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] const LinkSpec& link(LinkId id) const {
    return links_[static_cast<std::size_t>(id)].spec;
  }
  [[nodiscard]] const LinkStats& link_stats(LinkId id) const {
    return links_[static_cast<std::size_t>(id)].stats;
  }

  /// Start a flow of `bytes` across `path` after `latency` ticks of setup.
  /// `done` fires exactly once when the last byte arrives, unless the flow
  /// is cancelled or killed first. Zero-byte flows complete after `latency`.
  FlowId start_flow(std::vector<LinkId> path, std::uint64_t bytes,
                    Tick latency, std::function<void(FlowId)> done);

  /// Cancel an in-flight flow (e.g. its endpoint was preempted). The done
  /// callback is not invoked. Unknown/finished ids are ignored.
  void cancel_flow(FlowId id);

  /// Kill an in-flight flow as an injected fault. Like cancel_flow the done
  /// callback is not invoked, but the flow counts toward `flows_failed` and
  /// the fail listener fires so the owner can schedule a retry.
  void fail_flow(FlowId id);

  /// Arm the flow to fail once `fail_after_bytes` have been carried
  /// (clamped to [1, total_bytes]; no-op for unknown or zero-byte flows).
  /// The failure lands exactly when the armed byte crosses the wire, under
  /// whatever rates water-filling assigns in the meantime.
  void arm_flow_fault(FlowId id, std::uint64_t fail_after_bytes);

  /// Observer invoked after a flow is removed by fail_flow (injected kill).
  void set_fail_listener(std::function<void(FlowId)> cb) {
    on_fail_ = std::move(cb);
  }

  /// Scale a link's effective capacity by `factor` (1 = nominal, 0 = full
  /// outage: flows stall at rate zero and resume when the factor recovers).
  void set_link_scale(LinkId id, double factor);
  [[nodiscard]] double link_scale(LinkId id) const {
    return links_[static_cast<std::size_t>(id)].scale;
  }

  /// True if the flow is still pending or transferring.
  [[nodiscard]] bool flow_active(FlowId id) const {
    return flows_.contains(id);
  }

  /// Current rate of an active flow in bytes/second (0 while in setup).
  [[nodiscard]] Bandwidth flow_rate(FlowId id) const;

  [[nodiscard]] std::size_t active_flows() const { return flows_.size(); }
  [[nodiscard]] std::uint64_t total_bytes_completed() const {
    return bytes_completed_;
  }
  [[nodiscard]] std::uint64_t flows_completed() const {
    return flows_completed_;
  }
  [[nodiscard]] std::uint64_t flows_cancelled() const {
    return flows_cancelled_;
  }
  [[nodiscard]] std::uint64_t flows_failed() const { return flows_failed_; }
  /// Bytes carried by flows that were cancelled or killed before finishing.
  /// Invariant: per-link bytes_carried sums completed-flow bytes plus
  /// abandoned bytes plus in-flight progress — nothing is double-counted.
  [[nodiscard]] std::uint64_t bytes_abandoned() const {
    return bytes_abandoned_;
  }

  /// Register gauges (`<prefix>.active_flows`, `<prefix>.flows_completed`,
  /// `<prefix>.bytes_completed`, ...) into a per-run stats registry.
  void register_stats(obs::StatsRegistry& registry,
                      const std::string& prefix = "net") const;

 private:
  struct Flow {
    FlowId id = kInvalidFlow;
    std::vector<LinkId> path;
    std::uint64_t total_bytes = 0;
    double remaining = 0;  // bytes yet to move
    double carry = 0;      // sub-byte settle residue not yet attributed
    std::uint64_t attributed = 0;  // whole bytes charged to links so far
    std::uint64_t fail_at = 0;     // injected failure offset; 0 = none
    Bandwidth rate = 0;    // current allocation; 0 during setup
    Tick last_update = 0;  // when `remaining` was last settled
    bool transferring = false;
    std::function<void(FlowId)> done;
    sim::Engine::EventHandle completion;
    sim::Engine::EventHandle setup;
    sim::Engine::EventHandle failure;
  };

  struct Link {
    LinkSpec spec;
    LinkStats stats;
    std::int32_t active = 0;  // flows currently allocated on this link
    double scale = 1.0;       // fault-injected capacity factor
  };

  void begin_transfer(FlowId id);
  void finish_flow(FlowId id);
  void request_recompute();
  void recompute_now();
  void settle_flow(Flow& flow);
  void settle_progress();
  void attribute_bytes(Flow& flow, std::uint64_t bytes);
  void release_links(Flow& flow);

  sim::Engine& engine_;
  std::vector<Link> links_;
  std::map<FlowId, Flow> flows_;  // ordered: deterministic iteration
  FlowId next_flow_id_ = 1;
  bool recompute_scheduled_ = false;
  std::uint64_t bytes_completed_ = 0;
  std::uint64_t flows_completed_ = 0;
  std::uint64_t flows_cancelled_ = 0;
  std::uint64_t flows_failed_ = 0;
  std::uint64_t bytes_abandoned_ = 0;
  std::function<void(FlowId)> on_fail_;
};

}  // namespace hepvine::net
