// Flow-level network model with max-min fair bandwidth sharing.
//
// The cluster is modeled as a set of capacity-limited links (typically one
// uplink and one downlink per node NIC, plus an aggregate link for the
// shared filesystem). A transfer is a "flow" over a path of links. Whenever
// the set of active flows changes, per-flow rates are recomputed by
// progressive water-filling (the classic max-min fair allocation), progress
// is settled at the old rates, and each flow's completion event is
// rescheduled. Rate recomputation is batched per tick: any number of flow
// arrivals/departures at the same instant trigger a single recompute.
//
// Scaling: each recompute is restricted to the connected component of the
// link<->flow graph actually touched since the last recompute (flows join,
// leave, get armed, or a link's capacity scales), and only flows whose rate
// changes are settled and rescheduled. The full-network recompute survives
// behind NetworkOptions::incremental_recompute = false as the reference
// implementation; both paths produce bit-identical rates and event times
// (see DESIGN.md "Incremental max-min recompute"), which the differential
// tests enforce.
//
// Fault injection hooks: a flow can be killed mid-stream (`fail_flow`) or
// armed to fail once a byte offset has been carried (`arm_flow_fault`), and
// a link's effective capacity can be scaled by a factor (`set_link_scale`,
// used for shared-FS brownouts/outages). Killed flows never invoke `done`;
// the fail listener fires instead so the scheduler can retry.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "obs/stats_registry.h"
#include "sim/engine.h"
#include "util/units.h"

namespace hepvine::net {

using util::Bandwidth;
using util::Tick;

using LinkId = std::int32_t;
using FlowId = std::int64_t;

inline constexpr FlowId kInvalidFlow = -1;

/// Static description of one link.
struct LinkSpec {
  std::string name;
  Bandwidth capacity = 0;  // bytes/second
};

/// Cumulative per-link statistics.
struct LinkStats {
  std::uint64_t bytes_carried = 0;
  std::uint64_t flows_carried = 0;
};

struct NetworkOptions {
  /// Restrict each water-filling recompute to the connected component of
  /// links/flows touched since the last one. false = reference full
  /// recompute over every link and flow; same arithmetic, linear cost.
  /// Both settings produce bit-identical rates, events, and statistics.
  // vine-fastpath: opt-in
  bool incremental_recompute = true;
};

// vine-snapshot: state
class Network {
 public:
  explicit Network(sim::Engine& engine, NetworkOptions options = {})
      : engine_(engine), options_(options) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] const NetworkOptions& options() const noexcept {
    return options_;
  }

  /// Register a link; returns its id.
  LinkId add_link(std::string name, Bandwidth capacity);

  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] const LinkSpec& link(LinkId id) const {
    return links_[static_cast<std::size_t>(id)].spec;
  }
  [[nodiscard]] const LinkStats& link_stats(LinkId id) const {
    return links_[static_cast<std::size_t>(id)].stats;
  }

  /// Start a flow of `bytes` across `path` after `latency` ticks of setup.
  /// `done` fires exactly once when the last byte arrives, unless the flow
  /// is cancelled or killed first. Zero-byte flows complete after `latency`.
  FlowId start_flow(std::vector<LinkId> path, std::uint64_t bytes,
                    Tick latency, std::function<void(FlowId)> done);

  /// Cancel an in-flight flow (e.g. its endpoint was preempted). The done
  /// callback is not invoked. Unknown/finished ids are ignored.
  void cancel_flow(FlowId id);

  /// Kill an in-flight flow as an injected fault. Like cancel_flow the done
  /// callback is not invoked, but the flow counts toward `flows_failed` and
  /// the fail listener fires so the owner can schedule a retry.
  void fail_flow(FlowId id);

  /// Arm the flow to fail once `fail_after_bytes` have been carried
  /// (clamped to [1, total_bytes]; no-op for unknown or zero-byte flows).
  /// The failure lands exactly when the armed byte crosses the wire, under
  /// whatever rates water-filling assigns in the meantime.
  void arm_flow_fault(FlowId id, std::uint64_t fail_after_bytes);

  /// Observer invoked after a flow is removed by fail_flow (injected kill).
  void set_fail_listener(std::function<void(FlowId)> cb) {
    on_fail_ = std::move(cb);
  }

  /// Observer for anomalies the network self-heals from (currently: a
  /// transferring flow left unrated by water-filling). Arguments: time,
  /// flow id, human-readable detail.
  void set_warn_listener(
      std::function<void(Tick, FlowId, const char*)> cb) {
    on_warn_ = std::move(cb);
  }

  /// Observer invoked once per flow when it leaves the network, with its
  /// full wire-level span: (started_at, ended_at, id, total_bytes,
  /// carried_bytes, outcome) where outcome is 'D' done, 'C' cancelled,
  /// 'F' failed. Fires for every teardown path; null = no cost.
  void set_span_listener(std::function<void(Tick, Tick, FlowId,
                                            std::uint64_t, std::uint64_t,
                                            char)>
                             cb) {
    on_span_ = std::move(cb);
  }

  /// Scale a link's effective capacity by `factor` (1 = nominal, 0 = full
  /// outage: flows stall at rate zero and resume when the factor recovers).
  void set_link_scale(LinkId id, double factor);
  [[nodiscard]] double link_scale(LinkId id) const {
    return links_[static_cast<std::size_t>(id)].scale;
  }

  /// True if the flow is still pending or transferring.
  [[nodiscard]] bool flow_active(FlowId id) const {
    return find_flow(id) != nullptr;
  }

  /// Current rate of an active flow in bytes/second (0 while in setup).
  [[nodiscard]] Bandwidth flow_rate(FlowId id) const;

  [[nodiscard]] std::size_t active_flows() const { return live_flows_; }
  [[nodiscard]] std::uint64_t total_bytes_completed() const {
    return bytes_completed_;
  }
  [[nodiscard]] std::uint64_t flows_completed() const {
    return flows_completed_;
  }
  [[nodiscard]] std::uint64_t flows_cancelled() const {
    return flows_cancelled_;
  }
  [[nodiscard]] std::uint64_t flows_failed() const { return flows_failed_; }
  /// Bytes carried by flows that were cancelled or killed before finishing.
  /// Invariant: per-link bytes_carried sums completed-flow bytes plus
  /// abandoned bytes plus in-flight progress — nothing is double-counted.
  [[nodiscard]] std::uint64_t bytes_abandoned() const {
    return bytes_abandoned_;
  }

  // --- recompute cost accounting -----------------------------------------
  /// Water-filling passes executed so far.
  [[nodiscard]] std::uint64_t recomputes() const { return recomputes_; }
  /// Total flows visited (settle-checked/re-rated) across all recomputes;
  /// the incremental path's work metric. The reference path visits every
  /// transferring flow every time.
  [[nodiscard]] std::uint64_t recompute_flow_visits() const {
    return recompute_flow_visits_;
  }
  /// Transferring flows water-filling failed to rate and the network had
  /// to rescue with a rescheduled recompute (should stay 0).
  [[nodiscard]] std::uint64_t starvation_rescues() const {
    return starvation_rescues_;
  }

  /// Test seam: make the next recompute skip its water-filling loop, as if
  /// the defensive break fired with every flow still pending, to exercise
  /// the starved-flow rescue path.
  void debug_starve_next_water_fill() { debug_starve_once_ = true; }

  /// Register gauges (`<prefix>.active_flows`, `<prefix>.flows_completed`,
  /// `<prefix>.bytes_completed`, ...) into a per-run stats registry.
  void register_stats(obs::StatsRegistry& registry,
                      const std::string& prefix = "net") const;

 private:
  struct Flow {
    FlowId id = kInvalidFlow;
    std::vector<LinkId> path;
    std::uint64_t total_bytes = 0;
    double remaining = 0;  // bytes yet to move
    double carry = 0;      // sub-byte settle residue not yet attributed
    std::uint64_t attributed = 0;  // whole bytes charged to links so far
    std::uint64_t fail_at = 0;     // injected failure offset; 0 = none
    Bandwidth rate = 0;    // current allocation; 0 during setup
    Tick created_at = 0;   // when start_flow admitted it (span listener)
    Tick last_update = 0;  // when `remaining` was last settled
    bool transferring = false;
    bool in_component = false;  // scratch flag owned by recompute_now
    std::function<void(FlowId)> done;
    sim::Engine::EventHandle completion;
    sim::Engine::EventHandle setup;
    sim::Engine::EventHandle failure;
  };

  struct Link {
    LinkSpec spec;
    LinkStats stats;
    std::int32_t active = 0;  // flows currently allocated on this link
    double scale = 1.0;       // fault-injected capacity factor
    /// Ids of the transferring flows allocated here (unordered), so a
    /// recompute can walk the touched component instead of every flow.
    std::vector<FlowId> flows;
    bool dirty = false;    // touched since the last recompute
    bool visited = false;  // scratch flag owned by recompute_now
    // Water-filling state, valid only inside recompute_now.
    double wf_capacity = 0;
    std::int32_t wf_unfrozen = 0;
  };

  // --- flow table --------------------------------------------------------
  // Dense slot-map: flows live in `slots_` (recycled via `free_slots_`),
  // and `window_[id - window_base_]` maps a FlowId to its slot (-1 once
  // the flow is gone). FlowIds are assigned strictly monotonically, so the
  // window is a deque trimmed from the front as old flows retire; walking
  // it yields live flows in ascending-id order — the same deterministic
  // iteration order the previous std::map gave, without the rebalancing.
  [[nodiscard]] Flow* find_flow(FlowId id);
  [[nodiscard]] const Flow* find_flow(FlowId id) const;
  Flow& create_flow(FlowId id);
  void destroy_flow(FlowId id);

  void begin_transfer(FlowId id);
  void finish_flow(FlowId id);
  void request_recompute();
  void recompute_now();
  void settle_flow(Flow& flow);
  void attribute_bytes(Flow& flow, std::uint64_t bytes);
  void release_links(Flow& flow);
  void mark_dirty(LinkId id);
  void warn(FlowId id, const char* detail);

  // The network is below the snapshot line: the managers serialize the
  // logical flow set they own (the `flows` snapshot sections in vine/dd),
  // and deterministic replay regenerates every link rate, completion
  // callback and statistic from the same event stream. Nothing here is
  // restored directly, so each member is an explicit derived() exemption.
  sim::Engine& engine_;
  NetworkOptions options_;
  // vine-snapshot: derived(rates are a pure function of the live flow set)
  std::vector<Link> links_;

  // vine-snapshot: derived(the managers snapshot the flows they own)
  std::vector<Flow> slots_;
  // vine-snapshot: derived(slot recycling replays with the flow stream)
  std::vector<std::int32_t> free_slots_;
  // vine-snapshot: derived(id-recency window over slots_, itself derived)
  std::deque<std::int32_t> window_;
  // vine-snapshot: derived(id-recency window base; replays with the stream)
  FlowId window_base_ = 1;
  // vine-snapshot: derived(count over slots_, itself derived)
  std::size_t live_flows_ = 0;

  // vine-snapshot: derived(monotone id allocator; replays with the stream)
  FlowId next_flow_id_ = 1;
  // vine-snapshot: derived(event-queue latch; the queue is not restored)
  bool recompute_scheduled_ = false;
  // vine-snapshot: derived(test-only starvation trigger, never set in prod)
  bool debug_starve_once_ = false;
  // vine-snapshot: derived(recompute work list, drained within the event)
  std::vector<LinkId> dirty_links_;

  // Scratch buffers reused across recomputes to avoid per-event allocation;
  // all dead between events, hence derived.
  // vine-snapshot: derived(scratch, dead between events)
  std::vector<LinkId> bfs_stack_;
  // vine-snapshot: derived(scratch, dead between events)
  std::vector<LinkId> comp_links_;
  // vine-snapshot: derived(scratch, dead between events)
  std::vector<Flow*> comp_flows_;
  // vine-snapshot: derived(scratch, dead between events)
  std::vector<Flow*> pending_;
  // vine-snapshot: derived(scratch, dead between events)
  std::vector<Flow*> still_pending_;
  // vine-snapshot: derived(scratch, dead between events)
  std::vector<double> old_rates_;

  // Statistics: recomputed verbatim by replay, exported via RunReport.
  // vine-snapshot: derived(statistic, reproduced by replay)
  std::uint64_t bytes_completed_ = 0;
  // vine-snapshot: derived(statistic, reproduced by replay)
  std::uint64_t flows_completed_ = 0;
  // vine-snapshot: derived(statistic, reproduced by replay)
  std::uint64_t flows_cancelled_ = 0;
  // vine-snapshot: derived(statistic, reproduced by replay)
  std::uint64_t flows_failed_ = 0;
  // vine-snapshot: derived(statistic, reproduced by replay)
  std::uint64_t bytes_abandoned_ = 0;
  // vine-snapshot: derived(statistic, reproduced by replay)
  std::uint64_t recomputes_ = 0;
  // vine-snapshot: derived(statistic, reproduced by replay)
  std::uint64_t recompute_flow_visits_ = 0;
  // vine-snapshot: derived(statistic, reproduced by replay)
  std::uint64_t starvation_rescues_ = 0;
  // vine-snapshot: derived(closure; rewired by the owning run at startup)
  std::function<void(FlowId)> on_fail_;
  // vine-snapshot: derived(closure; rewired by the owning run at startup)
  std::function<void(Tick, FlowId, const char*)> on_warn_;
  // vine-snapshot: derived(closure; rewired by the owning run at startup)
  std::function<void(Tick, Tick, FlowId, std::uint64_t, std::uint64_t, char)>
      on_span_;
};

}  // namespace hepvine::net
