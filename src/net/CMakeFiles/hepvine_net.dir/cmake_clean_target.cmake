file(REMOVE_RECURSE
  "libhepvine_net.a"
)
