# Empty dependencies file for hepvine_net.
# This may be replaced when dependencies are built.
