file(REMOVE_RECURSE
  "CMakeFiles/hepvine_net.dir/network.cpp.o"
  "CMakeFiles/hepvine_net.dir/network.cpp.o.d"
  "libhepvine_net.a"
  "libhepvine_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hepvine_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
