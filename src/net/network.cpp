#include "net/network.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <utility>

namespace hepvine::net {

LinkId Network::add_link(std::string name, Bandwidth capacity) {
  const auto id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{LinkSpec{std::move(name), capacity}, {}, 0});
  return id;
}

FlowId Network::start_flow(std::vector<LinkId> path, std::uint64_t bytes,
                           Tick latency, std::function<void(FlowId)> done) {
  const FlowId id = next_flow_id_++;
  Flow flow;
  flow.id = id;
  flow.path = std::move(path);
  flow.total_bytes = bytes;
  flow.remaining = static_cast<double>(bytes);
  flow.done = std::move(done);
  flow.last_update = engine_.now();
  for (LinkId link : flow.path) {
    assert(link >= 0 && static_cast<std::size_t>(link) < links_.size());
    auto& l = links_[static_cast<std::size_t>(link)];
    l.stats.flows_carried += 1;
  }
  auto [it, inserted] = flows_.emplace(id, std::move(flow));
  assert(inserted);
  (void)inserted;
  it->second.setup = engine_.schedule_after(
      latency, [this, id] { begin_transfer(id); });
  return it->first;
}

void Network::begin_transfer(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  Flow& flow = it->second;
  if (flow.remaining <= 0.0) {
    finish_flow(id);
    return;
  }
  flow.transferring = true;
  flow.last_update = engine_.now();
  for (LinkId link : flow.path) {
    links_[static_cast<std::size_t>(link)].active += 1;
  }
  request_recompute();
}

void Network::cancel_flow(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  Flow& flow = it->second;
  flow.setup.cancel();
  flow.completion.cancel();
  if (flow.transferring) {
    settle_flow(flow);
    for (LinkId link : flow.path) {
      links_[static_cast<std::size_t>(link)].active -= 1;
    }
    request_recompute();
  }
  flows_.erase(it);
}

Bandwidth Network::flow_rate(FlowId id) const {
  auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.rate;
}

void Network::finish_flow(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  Flow& flow = it->second;
  // Charge this flow's progress up to now so link statistics include the
  // final stretch (settling is per-flow: each flow has its own last_update).
  settle_flow(flow);
  flow.setup.cancel();
  flow.completion.cancel();
  if (flow.transferring) {
    // Any sub-byte residue left by rounding is attributed to the links now.
    if (flow.remaining > 0) {
      for (LinkId link : flow.path) {
        links_[static_cast<std::size_t>(link)].stats.bytes_carried +=
            static_cast<std::uint64_t>(flow.remaining);
      }
    }
    for (LinkId link : flow.path) {
      links_[static_cast<std::size_t>(link)].active -= 1;
    }
  }
  bytes_completed_ += flow.total_bytes;
  auto done = std::move(flow.done);
  flows_.erase(it);
  flows_completed_ += 1;
  if (done) done(id);
  request_recompute();
}

void Network::request_recompute() {
  if (recompute_scheduled_) return;
  recompute_scheduled_ = true;
  // Batch all same-tick arrivals/departures into one recompute.
  engine_.schedule_after(0, [this] {
    recompute_scheduled_ = false;
    recompute_now();
  });
}

void Network::settle_flow(Flow& flow) {
  const Tick now = engine_.now();
  if (!flow.transferring) {
    flow.last_update = now;
    return;
  }
  const Tick elapsed = now - flow.last_update;
  if (elapsed > 0 && flow.rate > 0) {
    const double moved = flow.rate * util::to_seconds(elapsed);
    const double applied = std::min(moved, flow.remaining);
    flow.remaining -= applied;
    for (LinkId link : flow.path) {
      links_[static_cast<std::size_t>(link)].stats.bytes_carried +=
          static_cast<std::uint64_t>(applied);
    }
  }
  flow.last_update = now;
}

void Network::settle_progress() {
  for (auto& [id, flow] : flows_) {
    settle_flow(flow);
  }
}

void Network::recompute_now() {
  settle_progress();

  // Progressive water-filling. Each pass finds the most-contended link,
  // freezes its flows at that link's fair share, and removes the consumed
  // capacity; repeats until every transferring flow has a rate.
  std::vector<double> capacity(links_.size());
  std::vector<std::int32_t> unfrozen(links_.size());
  for (std::size_t i = 0; i < links_.size(); ++i) {
    capacity[i] = links_[i].spec.capacity;
    unfrozen[i] = links_[i].active;
  }

  std::vector<Flow*> pending;
  std::vector<double> old_rates;
  pending.reserve(flows_.size());
  old_rates.reserve(flows_.size());
  for (auto& [id, flow] : flows_) {
    if (flow.transferring) {
      old_rates.push_back(flow.rate);
      flow.rate = 0.0;
      pending.push_back(&flow);
    }
  }
  const std::vector<Flow*> all_transferring = pending;

  while (!pending.empty()) {
    double bottleneck_share = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < links_.size(); ++i) {
      if (unfrozen[i] > 0) {
        bottleneck_share =
            std::min(bottleneck_share, capacity[i] / unfrozen[i]);
      }
    }
    if (!std::isfinite(bottleneck_share)) break;  // defensive: no loaded link

    // Freeze every flow that traverses a link whose share equals the
    // bottleneck (within tolerance); at least one flow freezes per pass.
    std::vector<Flow*> still_pending;
    still_pending.reserve(pending.size());
    for (Flow* flow : pending) {
      bool frozen = false;
      for (LinkId link : flow->path) {
        const auto i = static_cast<std::size_t>(link);
        if (unfrozen[i] > 0 &&
            capacity[i] / unfrozen[i] <= bottleneck_share * (1 + 1e-12)) {
          frozen = true;
          break;
        }
      }
      if (frozen) {
        flow->rate = bottleneck_share;
        for (LinkId link : flow->path) {
          const auto i = static_cast<std::size_t>(link);
          capacity[i] -= bottleneck_share;
          if (capacity[i] < 0) capacity[i] = 0;
          unfrozen[i] -= 1;
        }
      } else {
        still_pending.push_back(flow);
      }
    }
    if (still_pending.size() == pending.size()) break;  // defensive
    pending.swap(still_pending);
  }

  // Reschedule completions at the new rates. Flows whose allocation did
  // not change keep their existing completion event — without this, a
  // recompute churns O(flows) cancel/reschedule pairs even when only one
  // corner of the network changed, which dominates large simulations.
  for (std::size_t i = 0; i < all_transferring.size(); ++i) {
    Flow& flow = *all_transferring[i];
    const double old_rate = old_rates[i];
    if (flow.remaining <= 0.5) {
      // Fractional residue from settling; finish immediately.
      flow.completion.cancel();
      const FlowId fid = flow.id;
      flow.completion =
          engine_.schedule_after(0, [this, fid] { finish_flow(fid); });
      continue;
    }
    const bool rate_unchanged =
        old_rate > 0.0 &&
        std::abs(flow.rate - old_rate) <= old_rate * 1e-12;
    if (rate_unchanged && flow.completion.pending()) {
      continue;  // completion time is still exact
    }
    flow.completion.cancel();
    if (flow.rate <= 0.0) continue;  // starved; waits for the next recompute
    const Tick eta = util::transfer_time(
        static_cast<std::uint64_t>(std::ceil(flow.remaining)), flow.rate);
    const FlowId fid = flow.id;
    flow.completion =
        engine_.schedule_after(eta, [this, fid] { finish_flow(fid); });
  }
}

void Network::register_stats(obs::StatsRegistry& registry,
                             const std::string& prefix) const {
  registry.gauge(prefix + ".active_flows",
                 [this] { return static_cast<double>(flows_.size()); });
  registry.gauge(prefix + ".flows_completed",
                 [this] { return static_cast<double>(flows_completed_); });
  registry.gauge(prefix + ".bytes_completed",
                 [this] { return static_cast<double>(bytes_completed_); });
}

}  // namespace hepvine::net
