#include "net/network.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <utility>

namespace hepvine::net {

LinkId Network::add_link(std::string name, Bandwidth capacity) {
  const auto id = static_cast<LinkId>(links_.size());
  Link link;
  link.spec = LinkSpec{std::move(name), capacity};
  links_.push_back(std::move(link));
  return id;
}

Network::Flow* Network::find_flow(FlowId id) {
  if (id < window_base_) return nullptr;
  const auto idx = static_cast<std::size_t>(id - window_base_);
  if (idx >= window_.size()) return nullptr;
  const std::int32_t slot = window_[idx];
  return slot < 0 ? nullptr : &slots_[static_cast<std::size_t>(slot)];
}

const Network::Flow* Network::find_flow(FlowId id) const {
  return const_cast<Network*>(this)->find_flow(id);
}

Network::Flow& Network::create_flow(FlowId id) {
  std::int32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::int32_t>(slots_.size());
    slots_.emplace_back();
  }
  assert(window_base_ + static_cast<FlowId>(window_.size()) == id);
  window_.push_back(slot);
  live_flows_ += 1;
  Flow& flow = slots_[static_cast<std::size_t>(slot)];
  flow.id = id;
  return flow;
}

void Network::destroy_flow(FlowId id) {
  const auto idx = static_cast<std::size_t>(id - window_base_);
  const std::int32_t slot = window_[idx];
  assert(slot >= 0);
  // Reset in place so the recycled slot starts clean and the done callback
  // and event handles release their captures now, not at slot reuse.
  slots_[static_cast<std::size_t>(slot)] = Flow{};
  free_slots_.push_back(slot);
  window_[idx] = -1;
  live_flows_ -= 1;
  while (!window_.empty() && window_.front() < 0) {
    window_.pop_front();
    window_base_ += 1;
  }
}

void Network::mark_dirty(LinkId id) {
  Link& link = links_[static_cast<std::size_t>(id)];
  if (!link.dirty) {
    link.dirty = true;
    dirty_links_.push_back(id);
  }
}

void Network::warn(FlowId id, const char* detail) {
  if (on_warn_) on_warn_(engine_.now(), id, detail);
}

FlowId Network::start_flow(std::vector<LinkId> path, std::uint64_t bytes,
                           Tick latency, std::function<void(FlowId)> done) {
  const FlowId id = next_flow_id_++;
  Flow& flow = create_flow(id);
  flow.path = std::move(path);
  flow.total_bytes = bytes;
  flow.remaining = static_cast<double>(bytes);
  flow.done = std::move(done);
  flow.created_at = engine_.now();
  flow.last_update = engine_.now();
  for (LinkId link : flow.path) {
    assert(link >= 0 && static_cast<std::size_t>(link) < links_.size());
    links_[static_cast<std::size_t>(link)].stats.flows_carried += 1;
  }
  flow.setup = engine_.schedule_after(
      latency, [this, id] { begin_transfer(id); });
  return id;
}

void Network::begin_transfer(FlowId id) {
  Flow* flow = find_flow(id);
  if (flow == nullptr) return;
  if (flow->remaining <= 0.0) {
    finish_flow(id);
    return;
  }
  flow->transferring = true;
  flow->last_update = engine_.now();
  for (LinkId link : flow->path) {
    Link& l = links_[static_cast<std::size_t>(link)];
    l.active += 1;
    l.flows.push_back(id);
    mark_dirty(link);
  }
  request_recompute();
}

void Network::release_links(Flow& flow) {
  if (!flow.transferring) return;
  for (LinkId link : flow.path) {
    Link& l = links_[static_cast<std::size_t>(link)];
    l.active -= 1;
    auto it = std::find(l.flows.begin(), l.flows.end(), flow.id);
    assert(it != l.flows.end());
    *it = l.flows.back();
    l.flows.pop_back();
    mark_dirty(link);
  }
  flow.transferring = false;
  request_recompute();
}

void Network::cancel_flow(FlowId id) {
  Flow* flow = find_flow(id);
  if (flow == nullptr) return;
  flow->setup.cancel();
  flow->completion.cancel();
  flow->failure.cancel();
  if (flow->transferring) settle_flow(*flow);
  release_links(*flow);
  flows_cancelled_ += 1;
  bytes_abandoned_ += flow->attributed;
  const Tick created = flow->created_at;
  const std::uint64_t total = flow->total_bytes;
  const std::uint64_t carried = flow->attributed;
  destroy_flow(id);
  if (on_span_) on_span_(created, engine_.now(), id, total, carried, 'C');
}

void Network::fail_flow(FlowId id) {
  Flow* flow = find_flow(id);
  if (flow == nullptr) return;
  flow->setup.cancel();
  flow->completion.cancel();
  flow->failure.cancel();
  if (flow->transferring) settle_flow(*flow);
  release_links(*flow);
  flows_failed_ += 1;
  bytes_abandoned_ += flow->attributed;
  const Tick created = flow->created_at;
  const std::uint64_t total = flow->total_bytes;
  const std::uint64_t carried = flow->attributed;
  destroy_flow(id);
  if (on_span_) on_span_(created, engine_.now(), id, total, carried, 'F');
  if (on_fail_) on_fail_(id);
}

void Network::arm_flow_fault(FlowId id, std::uint64_t fail_after_bytes) {
  Flow* flow = find_flow(id);
  if (flow == nullptr) return;
  if (flow->total_bytes == 0) return;  // no mid-stream byte to fail on
  flow->fail_at =
      std::clamp<std::uint64_t>(fail_after_bytes, 1, flow->total_bytes);
  // If the flow is live, rates are already assigned and no recompute may be
  // coming; dirty its path and (re)schedule the failure from here. Flows
  // still in setup pick up their failure event in the next recompute.
  if (flow->transferring) {
    for (LinkId link : flow->path) mark_dirty(link);
    request_recompute();
  }
}

Bandwidth Network::flow_rate(FlowId id) const {
  const Flow* flow = find_flow(id);
  return flow == nullptr ? 0.0 : flow->rate;
}

void Network::set_link_scale(LinkId id, double factor) {
  Link& l = links_[static_cast<std::size_t>(id)];
  if (l.scale == factor) return;
  l.scale = factor;
  mark_dirty(id);
  request_recompute();
}

void Network::attribute_bytes(Flow& flow, std::uint64_t bytes) {
  if (bytes == 0) return;
  flow.attributed += bytes;
  for (LinkId link : flow.path) {
    links_[static_cast<std::size_t>(link)].stats.bytes_carried += bytes;
  }
}

void Network::finish_flow(FlowId id) {
  Flow* flow = find_flow(id);
  if (flow == nullptr) return;
  // Charge this flow's progress up to now so link statistics include the
  // final stretch (settling is per-flow: each flow has its own last_update).
  settle_flow(*flow);
  flow->setup.cancel();
  flow->completion.cancel();
  flow->failure.cancel();
  if (flow->transferring) {
    // Attribute whatever rounding left behind so a completed flow charges
    // its links exactly total_bytes, no more and no less.
    assert(flow->attributed <= flow->total_bytes);
    attribute_bytes(*flow, flow->total_bytes - flow->attributed);
    release_links(*flow);
  }
  bytes_completed_ += flow->total_bytes;
  auto done = std::move(flow->done);
  const Tick created = flow->created_at;
  const std::uint64_t total = flow->total_bytes;
  destroy_flow(id);
  flows_completed_ += 1;
  if (on_span_) on_span_(created, engine_.now(), id, total, total, 'D');
  if (done) done(id);
  request_recompute();
}

void Network::request_recompute() {
  if (recompute_scheduled_) return;
  recompute_scheduled_ = true;
  // Batch all same-tick arrivals/departures into one recompute.
  engine_.schedule_after(0, [this] {
    recompute_scheduled_ = false;
    recompute_now();
  });
}

void Network::settle_flow(Flow& flow) {
  const Tick now = engine_.now();
  if (!flow.transferring) {
    flow.last_update = now;
    return;
  }
  const Tick elapsed = now - flow.last_update;
  if (elapsed > 0 && flow.rate > 0) {
    const double moved = flow.rate * util::to_seconds(elapsed);
    const double applied = std::min(moved, flow.remaining);
    flow.remaining -= applied;
    // Attribute whole bytes only; the sub-byte remainder carries over to the
    // next settle so long-lived slow flows never under-report bytes_carried.
    flow.carry += applied;
    const auto whole = static_cast<std::uint64_t>(flow.carry);
    flow.carry -= static_cast<double>(whole);
    attribute_bytes(flow, whole);
  }
  flow.last_update = now;
}

void Network::recompute_now() {
  // Collect the recompute set: the links and transferring flows whose rates
  // this pass may change. The reference path takes everything; the
  // incremental path walks the link<->flow graph from the links dirtied
  // since the last pass, which reaches exactly the flows whose max-min
  // allocation can have moved (a flow's rate depends only on its connected
  // component, and every mutation dirties the links it touches).
  comp_links_.clear();
  comp_flows_.clear();
  if (options_.incremental_recompute) {
    if (dirty_links_.empty()) return;
    bfs_stack_.clear();
    for (LinkId id : dirty_links_) {
      Link& link = links_[static_cast<std::size_t>(id)];
      link.dirty = false;
      if (!link.visited) {
        link.visited = true;
        bfs_stack_.push_back(id);
      }
    }
    dirty_links_.clear();
    while (!bfs_stack_.empty()) {
      const LinkId lid = bfs_stack_.back();
      bfs_stack_.pop_back();
      comp_links_.push_back(lid);
      for (FlowId fid : links_[static_cast<std::size_t>(lid)].flows) {
        Flow* flow = find_flow(fid);
        assert(flow != nullptr && flow->transferring);
        if (flow->in_component) continue;
        flow->in_component = true;
        comp_flows_.push_back(flow);
        for (LinkId pl : flow->path) {
          Link& p = links_[static_cast<std::size_t>(pl)];
          if (!p.visited) {
            p.visited = true;
            bfs_stack_.push_back(pl);
          }
        }
      }
    }
    // Discovery order depends on link lists; the contract below is id order.
    std::sort(comp_flows_.begin(), comp_flows_.end(),
              [](const Flow* a, const Flow* b) { return a->id < b->id; });
  } else {
    for (LinkId id : dirty_links_) {
      links_[static_cast<std::size_t>(id)].dirty = false;
    }
    dirty_links_.clear();
    for (std::size_t i = 0; i < links_.size(); ++i) {
      if (links_[i].active > 0) {
        links_[i].visited = true;
        comp_links_.push_back(static_cast<LinkId>(i));
      }
    }
    for (const std::int32_t slot : window_) {
      if (slot < 0) continue;
      Flow& flow = slots_[static_cast<std::size_t>(slot)];
      if (!flow.transferring) continue;
      flow.in_component = true;
      comp_flows_.push_back(&flow);  // window order == ascending id
    }
  }
  recomputes_ += 1;
  recompute_flow_visits_ += comp_flows_.size();

  if (!comp_flows_.empty()) {
    // Progressive water-filling over the recompute set. Each pass finds the
    // most-contended link, freezes its flows at that link's fair share, and
    // removes the consumed capacity; repeats until every flow has a rate.
    // The freeze comparison is exact (no tolerance): that makes per-
    // component water-filling bit-identical to the global pass — a link
    // merely *near* another component's bottleneck must not freeze early.
    old_rates_.clear();
    for (Flow* flow : comp_flows_) {
      old_rates_.push_back(flow->rate);
      flow->rate = 0.0;
    }
    for (LinkId id : comp_links_) {
      Link& link = links_[static_cast<std::size_t>(id)];
      link.wf_capacity = link.spec.capacity * link.scale;
      link.wf_unfrozen = link.active;
    }

    pending_.assign(comp_flows_.begin(), comp_flows_.end());
    const bool starve_seam = debug_starve_once_;
    debug_starve_once_ = false;
    while (!starve_seam && !pending_.empty()) {
      double bottleneck_share = std::numeric_limits<double>::infinity();
      for (LinkId id : comp_links_) {
        const Link& link = links_[static_cast<std::size_t>(id)];
        if (link.wf_unfrozen > 0) {
          bottleneck_share = std::min(
              bottleneck_share, link.wf_capacity / link.wf_unfrozen);
        }
      }
      if (!std::isfinite(bottleneck_share)) break;  // defensive: no load

      still_pending_.clear();
      for (Flow* flow : pending_) {
        bool frozen = false;
        for (LinkId id : flow->path) {
          const Link& link = links_[static_cast<std::size_t>(id)];
          if (link.wf_unfrozen > 0 &&
              link.wf_capacity / link.wf_unfrozen <= bottleneck_share) {
            frozen = true;
            break;
          }
        }
        if (frozen) {
          flow->rate = bottleneck_share;
          for (LinkId id : flow->path) {
            Link& link = links_[static_cast<std::size_t>(id)];
            link.wf_capacity -= bottleneck_share;
            if (link.wf_capacity < 0) link.wf_capacity = 0;
            link.wf_unfrozen -= 1;
          }
        } else {
          still_pending_.push_back(flow);
        }
      }
      if (still_pending_.size() == pending_.size()) break;  // defensive
      pending_.swap(still_pending_);
    }

    if (!pending_.empty()) {
      // Water-filling failed to rate a transferring flow (a defensive break
      // above fired). An unrated flow schedules no completion, so on a
      // quiet network the run would hang. Self-heal: warn, re-dirty the
      // flow's links, and retry one tick later (not this tick, which would
      // loop); the assert makes an organic occurrence loud in debug builds.
      for (Flow* flow : pending_) {
        starvation_rescues_ += 1;
        warn(flow->id, "water-filling left flow unrated; rescue recompute");
        for (LinkId id : flow->path) mark_dirty(id);
      }
      assert(starve_seam &&
             "water-filling left a transferring flow unrated");
      engine_.schedule_after(1, [this] { request_recompute(); });
    }

    // Reschedule completions at the new rates, in ascending flow id. Flows
    // whose allocation did not change keep their existing completion event
    // and are NOT settled — settle instants are thus a function of rate
    // changes alone, which is what makes the incremental and reference
    // paths produce identical floating-point progress chunking.
    for (std::size_t i = 0; i < comp_flows_.size(); ++i) {
      Flow& flow = *comp_flows_[i];
      const double old_rate = old_rates_[i];
      const double new_rate = flow.rate;
      const bool rate_unchanged =
          old_rate > 0.0 &&
          std::abs(new_rate - old_rate) <= old_rate * 1e-12;
      const bool failure_current =
          flow.fail_at == 0 || (rate_unchanged && flow.failure.pending());
      if (rate_unchanged && flow.completion.pending() && failure_current) {
        continue;  // completion (and failure) times are still exact
      }
      flow.rate = old_rate;
      settle_flow(flow);
      flow.rate = new_rate;
      const FlowId fid = flow.id;
      // Completion/failure moves use Engine::reschedule_after — the
      // callbacks are per-flow constants, so a pending event's slot (and
      // its stored std::function) is reused rather than reconstructed for
      // every rate change. The fired-event order matches cancel+schedule
      // exactly (one seq either way).
      if (flow.remaining <= 0.5) {
        // Fractional residue from settling. An armed failure inside the
        // residual bytes still wins — the flow was injected to die in its
        // last bytes, so it must not slip through as a completion.
        if (flow.fail_at > 0) {
          flow.completion.cancel();
          flow.failure = engine_.reschedule_after(
              flow.failure, 0, [this, fid] { fail_flow(fid); });
        } else {
          flow.failure.cancel();
          flow.completion = engine_.reschedule_after(
              flow.completion, 0, [this, fid] { finish_flow(fid); });
        }
        continue;
      }
      if (flow.rate <= 0.0) {  // stalled (outage) or rescue pending
        flow.completion.cancel();
        flow.failure.cancel();
        continue;
      }
      if (flow.fail_at > 0) {
        const double carried =
            static_cast<double>(flow.total_bytes) - flow.remaining;
        const double left = static_cast<double>(flow.fail_at) - carried;
        if (left <= 0.5) {
          // The armed byte already crossed; fail now.
          flow.completion.cancel();
          flow.failure = engine_.reschedule_after(
              flow.failure, 0, [this, fid] { fail_flow(fid); });
          continue;  // no completion: the failure removes the flow first
        }
        const Tick fail_eta = util::transfer_time(
            static_cast<std::uint64_t>(std::ceil(left)), flow.rate);
        flow.failure = engine_.reschedule_after(
            flow.failure, fail_eta, [this, fid] { fail_flow(fid); });
        // Scheduled before completion: on an exact tie the failure wins.
      } else {
        flow.failure.cancel();
      }
      const Tick eta = util::transfer_time(
          static_cast<std::uint64_t>(std::ceil(flow.remaining)), flow.rate);
      flow.completion = engine_.reschedule_after(
          flow.completion, eta, [this, fid] { finish_flow(fid); });
    }
  }

  for (LinkId id : comp_links_) {
    links_[static_cast<std::size_t>(id)].visited = false;
  }
  for (Flow* flow : comp_flows_) flow->in_component = false;
}

void Network::register_stats(obs::StatsRegistry& registry,
                             const std::string& prefix) const {
  registry.gauge(prefix + ".active_flows",
                 [this] { return static_cast<double>(live_flows_); });
  registry.gauge(prefix + ".flows_completed",
                 [this] { return static_cast<double>(flows_completed_); });
  registry.gauge(prefix + ".bytes_completed",
                 [this] { return static_cast<double>(bytes_completed_); });
  registry.gauge(prefix + ".flows_cancelled", [this] {
    return static_cast<double>(flows_cancelled_ + flows_failed_);
  });
  registry.gauge(prefix + ".bytes_abandoned",
                 [this] { return static_cast<double>(bytes_abandoned_); });
}

}  // namespace hepvine::net
