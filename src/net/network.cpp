#include "net/network.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <utility>

namespace hepvine::net {

LinkId Network::add_link(std::string name, Bandwidth capacity) {
  const auto id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{LinkSpec{std::move(name), capacity}, {}, 0, 1.0});
  return id;
}

FlowId Network::start_flow(std::vector<LinkId> path, std::uint64_t bytes,
                           Tick latency, std::function<void(FlowId)> done) {
  const FlowId id = next_flow_id_++;
  Flow flow;
  flow.id = id;
  flow.path = std::move(path);
  flow.total_bytes = bytes;
  flow.remaining = static_cast<double>(bytes);
  flow.done = std::move(done);
  flow.last_update = engine_.now();
  for (LinkId link : flow.path) {
    assert(link >= 0 && static_cast<std::size_t>(link) < links_.size());
    auto& l = links_[static_cast<std::size_t>(link)];
    l.stats.flows_carried += 1;
  }
  auto [it, inserted] = flows_.emplace(id, std::move(flow));
  assert(inserted);
  (void)inserted;
  it->second.setup = engine_.schedule_after(
      latency, [this, id] { begin_transfer(id); });
  return it->first;
}

void Network::begin_transfer(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  Flow& flow = it->second;
  if (flow.remaining <= 0.0) {
    finish_flow(id);
    return;
  }
  flow.transferring = true;
  flow.last_update = engine_.now();
  for (LinkId link : flow.path) {
    links_[static_cast<std::size_t>(link)].active += 1;
  }
  request_recompute();
}

void Network::release_links(Flow& flow) {
  if (!flow.transferring) return;
  for (LinkId link : flow.path) {
    links_[static_cast<std::size_t>(link)].active -= 1;
  }
  request_recompute();
}

void Network::cancel_flow(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  Flow& flow = it->second;
  flow.setup.cancel();
  flow.completion.cancel();
  flow.failure.cancel();
  if (flow.transferring) settle_flow(flow);
  release_links(flow);
  flows_cancelled_ += 1;
  bytes_abandoned_ += flow.attributed;
  flows_.erase(it);
}

void Network::fail_flow(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  Flow& flow = it->second;
  flow.setup.cancel();
  flow.completion.cancel();
  flow.failure.cancel();
  if (flow.transferring) settle_flow(flow);
  release_links(flow);
  flows_failed_ += 1;
  bytes_abandoned_ += flow.attributed;
  flows_.erase(it);
  if (on_fail_) on_fail_(id);
}

void Network::arm_flow_fault(FlowId id, std::uint64_t fail_after_bytes) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  Flow& flow = it->second;
  if (flow.total_bytes == 0) return;  // no mid-stream byte to fail on
  flow.fail_at =
      std::clamp<std::uint64_t>(fail_after_bytes, 1, flow.total_bytes);
  // If the flow is live, rates are already assigned and no recompute may be
  // coming; (re)schedule the failure from here. Flows still in setup pick
  // up their failure event in the next recompute.
  if (flow.transferring) request_recompute();
}

Bandwidth Network::flow_rate(FlowId id) const {
  auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.rate;
}

void Network::set_link_scale(LinkId id, double factor) {
  auto& l = links_[static_cast<std::size_t>(id)];
  if (l.scale == factor) return;
  l.scale = factor;
  request_recompute();
}

void Network::attribute_bytes(Flow& flow, std::uint64_t bytes) {
  if (bytes == 0) return;
  flow.attributed += bytes;
  for (LinkId link : flow.path) {
    links_[static_cast<std::size_t>(link)].stats.bytes_carried += bytes;
  }
}

void Network::finish_flow(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  Flow& flow = it->second;
  // Charge this flow's progress up to now so link statistics include the
  // final stretch (settling is per-flow: each flow has its own last_update).
  settle_flow(flow);
  flow.setup.cancel();
  flow.completion.cancel();
  flow.failure.cancel();
  if (flow.transferring) {
    // Attribute whatever rounding left behind so a completed flow charges
    // its links exactly total_bytes, no more and no less.
    assert(flow.attributed <= flow.total_bytes);
    attribute_bytes(flow, flow.total_bytes - flow.attributed);
    for (LinkId link : flow.path) {
      links_[static_cast<std::size_t>(link)].active -= 1;
    }
  }
  bytes_completed_ += flow.total_bytes;
  auto done = std::move(flow.done);
  flows_.erase(it);
  flows_completed_ += 1;
  if (done) done(id);
  request_recompute();
}

void Network::request_recompute() {
  if (recompute_scheduled_) return;
  recompute_scheduled_ = true;
  // Batch all same-tick arrivals/departures into one recompute.
  engine_.schedule_after(0, [this] {
    recompute_scheduled_ = false;
    recompute_now();
  });
}

void Network::settle_flow(Flow& flow) {
  const Tick now = engine_.now();
  if (!flow.transferring) {
    flow.last_update = now;
    return;
  }
  const Tick elapsed = now - flow.last_update;
  if (elapsed > 0 && flow.rate > 0) {
    const double moved = flow.rate * util::to_seconds(elapsed);
    const double applied = std::min(moved, flow.remaining);
    flow.remaining -= applied;
    // Attribute whole bytes only; the sub-byte remainder carries over to the
    // next settle so long-lived slow flows never under-report bytes_carried.
    flow.carry += applied;
    const auto whole = static_cast<std::uint64_t>(flow.carry);
    flow.carry -= static_cast<double>(whole);
    attribute_bytes(flow, whole);
  }
  flow.last_update = now;
}

void Network::settle_progress() {
  for (auto& [id, flow] : flows_) {
    settle_flow(flow);
  }
}

void Network::recompute_now() {
  settle_progress();

  // Progressive water-filling. Each pass finds the most-contended link,
  // freezes its flows at that link's fair share, and removes the consumed
  // capacity; repeats until every transferring flow has a rate.
  std::vector<double> capacity(links_.size());
  std::vector<std::int32_t> unfrozen(links_.size());
  for (std::size_t i = 0; i < links_.size(); ++i) {
    capacity[i] = links_[i].spec.capacity * links_[i].scale;
    unfrozen[i] = links_[i].active;
  }

  std::vector<Flow*> pending;
  std::vector<double> old_rates;
  pending.reserve(flows_.size());
  old_rates.reserve(flows_.size());
  for (auto& [id, flow] : flows_) {
    if (flow.transferring) {
      old_rates.push_back(flow.rate);
      flow.rate = 0.0;
      pending.push_back(&flow);
    }
  }
  const std::vector<Flow*> all_transferring = pending;

  while (!pending.empty()) {
    double bottleneck_share = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < links_.size(); ++i) {
      if (unfrozen[i] > 0) {
        bottleneck_share =
            std::min(bottleneck_share, capacity[i] / unfrozen[i]);
      }
    }
    if (!std::isfinite(bottleneck_share)) break;  // defensive: no loaded link

    // Freeze every flow that traverses a link whose share equals the
    // bottleneck (within tolerance); at least one flow freezes per pass.
    std::vector<Flow*> still_pending;
    still_pending.reserve(pending.size());
    for (Flow* flow : pending) {
      bool frozen = false;
      for (LinkId link : flow->path) {
        const auto i = static_cast<std::size_t>(link);
        if (unfrozen[i] > 0 &&
            capacity[i] / unfrozen[i] <= bottleneck_share * (1 + 1e-12)) {
          frozen = true;
          break;
        }
      }
      if (frozen) {
        flow->rate = bottleneck_share;
        for (LinkId link : flow->path) {
          const auto i = static_cast<std::size_t>(link);
          capacity[i] -= bottleneck_share;
          if (capacity[i] < 0) capacity[i] = 0;
          unfrozen[i] -= 1;
        }
      } else {
        still_pending.push_back(flow);
      }
    }
    if (still_pending.size() == pending.size()) break;  // defensive
    pending.swap(still_pending);
  }

  // Reschedule completions at the new rates. Flows whose allocation did
  // not change keep their existing completion event — without this, a
  // recompute churns O(flows) cancel/reschedule pairs even when only one
  // corner of the network changed, which dominates large simulations.
  for (std::size_t i = 0; i < all_transferring.size(); ++i) {
    Flow& flow = *all_transferring[i];
    const double old_rate = old_rates[i];
    if (flow.remaining <= 0.5) {
      // Fractional residue from settling; finish immediately.
      flow.completion.cancel();
      flow.failure.cancel();
      const FlowId fid = flow.id;
      flow.completion =
          engine_.schedule_after(0, [this, fid] { finish_flow(fid); });
      continue;
    }
    const bool rate_unchanged =
        old_rate > 0.0 &&
        std::abs(flow.rate - old_rate) <= old_rate * 1e-12;
    const bool failure_current =
        flow.fail_at == 0 || (rate_unchanged && flow.failure.pending());
    if (rate_unchanged && flow.completion.pending() && failure_current) {
      continue;  // completion (and failure) times are still exact
    }
    flow.completion.cancel();
    flow.failure.cancel();
    if (flow.rate <= 0.0) continue;  // starved; waits for the next recompute
    const FlowId fid = flow.id;
    if (flow.fail_at > 0) {
      const double carried =
          static_cast<double>(flow.total_bytes) - flow.remaining;
      const double left = static_cast<double>(flow.fail_at) - carried;
      if (left <= 0.5) {
        // The armed byte already crossed; fail now.
        flow.failure =
            engine_.schedule_after(0, [this, fid] { fail_flow(fid); });
        continue;  // no completion: the failure removes the flow first
      }
      const Tick fail_eta = util::transfer_time(
          static_cast<std::uint64_t>(std::ceil(left)), flow.rate);
      flow.failure = engine_.schedule_after(
          fail_eta, [this, fid] { fail_flow(fid); });
      // Scheduled before completion: on an exact tie the failure wins.
    }
    const Tick eta = util::transfer_time(
        static_cast<std::uint64_t>(std::ceil(flow.remaining)), flow.rate);
    flow.completion =
        engine_.schedule_after(eta, [this, fid] { finish_flow(fid); });
  }
}

void Network::register_stats(obs::StatsRegistry& registry,
                             const std::string& prefix) const {
  registry.gauge(prefix + ".active_flows",
                 [this] { return static_cast<double>(flows_.size()); });
  registry.gauge(prefix + ".flows_completed",
                 [this] { return static_cast<double>(flows_completed_); });
  registry.gauge(prefix + ".bytes_completed",
                 [this] { return static_cast<double>(bytes_completed_); });
  registry.gauge(prefix + ".flows_cancelled", [this] {
    return static_cast<double>(flows_cancelled_ + flows_failed_);
  });
  registry.gauge(prefix + ".bytes_abandoned",
                 [this] { return static_cast<double>(bytes_abandoned_); });
}

}  // namespace hepvine::net
