// Shared (cluster-wide) filesystem models.
//
// Two presets reproduce the paper's storage layer:
//  * HDFS  — commodity spinning disks, triple replication, optimized for
//            bulk throughput: decent aggregate bandwidth, poor per-open
//            latency and expensive metadata operations.
//  * VAST  — NVMe parallel filesystem with a POSIX interface: similar
//            aggregate bandwidth at our scale but ~100x better open and
//            metadata latency.
//
// The filesystem owns one aggregate network link; a read by a node is a
// flow across [fs_link, node_downlink] that starts after the open latency.
// Metadata operations (the expensive part of Python imports on a shared
// filesystem, per the import-hoisting experiment) are modeled as latency
// only, with a cap on how many can be serviced per second.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/network.h"
#include "obs/stats_registry.h"
#include "sim/engine.h"
#include "util/units.h"

namespace hepvine::storage {

using util::Bandwidth;
using util::Tick;

struct SharedFsSpec {
  std::string name;
  std::uint64_t capacity = 0;
  Bandwidth aggregate_bw = 0;   // total bytes/second across all clients
  Tick open_latency = 0;        // per-file open (data path)
  Tick metadata_latency = 0;    // per metadata op (stat/lookup), unloaded
  double metadata_ops_per_sec = 0;  // server-wide metadata throughput cap
  std::uint32_t replication = 1;
};

/// The paper's 644 TB HDFS cluster: spinning disks, triple replication.
[[nodiscard]] SharedFsSpec hdfs_spec();

/// The paper's 918 TB (676 usable) VAST NVMe parallel filesystem.
[[nodiscard]] SharedFsSpec vast_spec();

/// The wide-area XRootD federation (Section IV-A): CMS data served from
/// remote sites over the WAN. High per-open latency and limited effective
/// bandwidth into the campus — the reason the group maintains local data
/// subsets instead of streaming from the federation per run.
[[nodiscard]] SharedFsSpec xrootd_wan_spec();

class SharedFilesystem {
 public:
  /// `link` must be a link registered in `network` with the filesystem's
  /// aggregate bandwidth.
  SharedFilesystem(sim::Engine& engine, net::Network& network,
                   net::LinkId link, SharedFsSpec spec);

  [[nodiscard]] const SharedFsSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] net::LinkId link() const noexcept { return link_; }

  /// Read `bytes` to a node reachable via `node_downlink`. `done` fires when
  /// the data has fully arrived. Returns the flow id (cancellable).
  net::FlowId read(net::LinkId node_downlink, std::uint64_t bytes,
                   std::function<void()> done);

  /// Write `bytes` from a node via `node_uplink`. Replication multiplies the
  /// bytes that cross the filesystem's aggregate link.
  net::FlowId write(net::LinkId node_uplink, std::uint64_t bytes,
                    std::function<void()> done);

  /// Degrade (or restore) the filesystem's aggregate bandwidth to `factor`
  /// of nominal — the fault-injection hook for brownouts (0 < factor < 1)
  /// and full outages (factor 0: reads/writes stall until restored).
  void set_bandwidth_scale(double factor) {
    network_.set_link_scale(link_, factor);
  }
  [[nodiscard]] double bandwidth_scale() const {
    return network_.link_scale(link_);
  }

  /// Perform `count` metadata operations (stat/open/lookup) and invoke
  /// `done` when they finish. Latency grows once the server-wide metadata
  /// throughput cap is exceeded (a queueing delay), which is what makes
  /// un-hoisted imports on a shared filesystem expensive at scale.
  void metadata_ops(std::uint64_t count, std::function<void()> done);

  [[nodiscard]] std::uint64_t bytes_read() const noexcept {
    return bytes_read_;
  }
  [[nodiscard]] std::uint64_t bytes_written() const noexcept {
    return bytes_written_;
  }
  [[nodiscard]] std::uint64_t metadata_ops_served() const noexcept {
    return metadata_served_;
  }

  /// Register gauges (`<prefix>.bytes_read`, `<prefix>.bytes_written`,
  /// `<prefix>.metadata_ops`) into a per-run stats registry.
  void register_stats(obs::StatsRegistry& registry,
                      const std::string& prefix = "fs") const;

 private:
  sim::Engine& engine_;
  net::Network& network_;
  net::LinkId link_;
  SharedFsSpec spec_;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t metadata_served_ = 0;
  Tick metadata_busy_until_ = 0;  // virtual-queue model for the MDS
};

}  // namespace hepvine::storage
