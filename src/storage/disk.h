// Node-local disk model: capacity accounting plus a simple service-time
// model (per-op latency + size/bandwidth). Capacity pressure is load-bearing
// for the paper's Fig 11 (worker cache overflow kills workers); throughput
// matters for local cache reads vs shared-filesystem reads.
#pragma once

#include <cstdint>
#include <string>

#include "util/units.h"

namespace hepvine::storage {

using util::Bandwidth;
using util::Tick;

struct DiskSpec {
  Bandwidth read_bw = util::mbs(500);
  Bandwidth write_bw = util::mbs(400);
  Tick op_latency = 200 * util::kUsec;
};

/// Spinning-disk profile (HDFS data nodes in the paper).
[[nodiscard]] constexpr DiskSpec spinning_disk() {
  return DiskSpec{util::mbs(160), util::mbs(120), 8 * util::kMsec};
}

/// NVMe profile (VAST storage nodes, worker scratch disks).
[[nodiscard]] constexpr DiskSpec nvme_disk() {
  return DiskSpec{util::mbs(2500), util::mbs(1800), 80 * util::kUsec};
}

class LocalDisk {
 public:
  LocalDisk() = default;
  LocalDisk(DiskSpec spec, std::uint64_t capacity)
      : spec_(spec), capacity_(capacity) {}

  [[nodiscard]] const DiskSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::uint64_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t used() const noexcept { return used_; }
  [[nodiscard]] std::uint64_t peak_used() const noexcept { return peak_; }
  [[nodiscard]] std::uint64_t available() const noexcept {
    return capacity_ > used_ ? capacity_ - used_ : 0;
  }

  /// Reserve space for a file being written/cached. Returns false (and
  /// reserves nothing) if it does not fit — the caller decides whether that
  /// is an eviction opportunity or a fatal overflow.
  [[nodiscard]] bool reserve(std::uint64_t bytes) noexcept {
    if (bytes > available()) return false;
    used_ += bytes;
    if (used_ > peak_) peak_ = used_;
    return true;
  }

  /// Reserve even past capacity (models a worker whose scratch partition is
  /// shared: the write succeeds until the partition actually fills). Returns
  /// true when the disk is still within capacity afterwards; false means the
  /// partition overflowed — the bytes are accounted regardless, so the
  /// caller sees the overflowed state it must now handle (evict or crash).
  [[nodiscard]] bool try_reserve(std::uint64_t bytes) noexcept {
    used_ += bytes;
    if (used_ > peak_) peak_ = used_;
    return used_ <= capacity_;
  }

  void release(std::uint64_t bytes) noexcept {
    used_ = bytes > used_ ? 0 : used_ - bytes;
  }

  [[nodiscard]] bool over_capacity() const noexcept {
    return used_ > capacity_;
  }

  /// Service time for a contention-free read/write of `bytes`.
  [[nodiscard]] Tick read_time(std::uint64_t bytes) const noexcept {
    return spec_.op_latency + util::transfer_time(bytes, spec_.read_bw);
  }
  [[nodiscard]] Tick write_time(std::uint64_t bytes) const noexcept {
    return spec_.op_latency + util::transfer_time(bytes, spec_.write_bw);
  }

 private:
  DiskSpec spec_{};
  std::uint64_t capacity_ = 0;
  std::uint64_t used_ = 0;
  std::uint64_t peak_ = 0;
};

}  // namespace hepvine::storage
