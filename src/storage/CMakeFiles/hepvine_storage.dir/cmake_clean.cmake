file(REMOVE_RECURSE
  "CMakeFiles/hepvine_storage.dir/shared_fs.cpp.o"
  "CMakeFiles/hepvine_storage.dir/shared_fs.cpp.o.d"
  "libhepvine_storage.a"
  "libhepvine_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hepvine_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
