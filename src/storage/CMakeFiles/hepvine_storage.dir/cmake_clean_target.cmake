file(REMOVE_RECURSE
  "libhepvine_storage.a"
)
