# Empty dependencies file for hepvine_storage.
# This may be replaced when dependencies are built.
