#include "storage/shared_fs.h"

#include <algorithm>
#include <utility>

namespace hepvine::storage {

SharedFsSpec hdfs_spec() {
  SharedFsSpec spec;
  spec.name = "hdfs";
  spec.capacity = 644 * util::kTB / 3;  // triple replication
  // Effective read bandwidth this application saw from the end-of-life
  // spinning-disk cluster (shared with other users), not the nameplate
  // aggregate.
  spec.aggregate_bw = util::gbps(8);
  spec.open_latency = 35 * util::kMsec;
  spec.metadata_latency = 12 * util::kMsec;
  spec.metadata_ops_per_sec = 4'000;
  spec.replication = 3;
  return spec;
}

SharedFsSpec vast_spec() {
  SharedFsSpec spec;
  spec.name = "vast";
  spec.capacity = 676 * util::kTB;
  // Effective share of the campus-wide NVMe system available to one
  // application's streams.
  spec.aggregate_bw = util::gbps(40);
  spec.open_latency = 700 * util::kUsec;
  spec.metadata_latency = 250 * util::kUsec;
  spec.metadata_ops_per_sec = 200'000;
  spec.replication = 1;
  return spec;
}

SharedFsSpec xrootd_wan_spec() {
  SharedFsSpec spec;
  spec.name = "xrootd-wan";
  spec.capacity = 200'000 * util::kTB;  // the global CMS data federation
  spec.aggregate_bw = util::gbps(4);    // effective WAN ingress to campus
  spec.open_latency = 180 * util::kMsec;
  spec.metadata_latency = 120 * util::kMsec;
  spec.metadata_ops_per_sec = 500;
  spec.replication = 1;
  return spec;
}

SharedFilesystem::SharedFilesystem(sim::Engine& engine, net::Network& network,
                                   net::LinkId link, SharedFsSpec spec)
    : engine_(engine), network_(network), link_(link), spec_(std::move(spec)) {}

net::FlowId SharedFilesystem::read(net::LinkId node_downlink,
                                   std::uint64_t bytes,
                                   std::function<void()> done) {
  bytes_read_ += bytes;
  return network_.start_flow(
      {link_, node_downlink}, bytes, spec_.open_latency,
      [cb = std::move(done)](net::FlowId) {
        if (cb) cb();
      });
}

net::FlowId SharedFilesystem::write(net::LinkId node_uplink,
                                    std::uint64_t bytes,
                                    std::function<void()> done) {
  bytes_written_ += bytes;
  // Replication amplifies traffic on the filesystem's aggregate link; we
  // charge it by inflating the flow size (the client sees the same bytes,
  // but the shared link carries `replication` copies).
  const std::uint64_t wire_bytes = bytes * spec_.replication;
  return network_.start_flow(
      {node_uplink, link_}, wire_bytes, spec_.open_latency,
      [cb = std::move(done)](net::FlowId) {
        if (cb) cb();
      });
}

void SharedFilesystem::metadata_ops(std::uint64_t count,
                                    std::function<void()> done) {
  metadata_served_ += count;
  const Tick now = engine_.now();
  // Virtual queue: the metadata server drains ops at a fixed rate. A client
  // issuing `count` ops waits for its ops' position in the queue plus the
  // unloaded per-op latency.
  const Tick service =
      static_cast<Tick>(static_cast<double>(count) /
                        std::max(1.0, spec_.metadata_ops_per_sec) *
                        static_cast<double>(util::kSec));
  metadata_busy_until_ = std::max(metadata_busy_until_, now) + service;
  const Tick finish = metadata_busy_until_ + spec_.metadata_latency;
  engine_.schedule_at(finish, [cb = std::move(done)] {
    if (cb) cb();
  });
}

void SharedFilesystem::register_stats(obs::StatsRegistry& registry,
                                      const std::string& prefix) const {
  registry.gauge(prefix + ".bytes_read",
                 [this] { return static_cast<double>(bytes_read_); });
  registry.gauge(prefix + ".bytes_written",
                 [this] { return static_cast<double>(bytes_written_); });
  registry.gauge(prefix + ".metadata_ops",
                 [this] { return static_cast<double>(metadata_served_); });
}

}  // namespace hepvine::storage
