# Empty dependencies file for hepvine_batch.
# This may be replaced when dependencies are built.
