file(REMOVE_RECURSE
  "CMakeFiles/hepvine_batch.dir/batch_system.cpp.o"
  "CMakeFiles/hepvine_batch.dir/batch_system.cpp.o.d"
  "libhepvine_batch.a"
  "libhepvine_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hepvine_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
