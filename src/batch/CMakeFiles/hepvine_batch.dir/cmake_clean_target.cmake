file(REMOVE_RECURSE
  "libhepvine_batch.a"
)
