#include "batch/batch_system.h"

#include <utility>

namespace hepvine::batch {

BatchSystem::BatchSystem(sim::Engine& engine, BatchSpec spec,
                         std::uint64_t seed)
    : engine_(engine), spec_(spec), rng_(seed, "batch") {}

void BatchSystem::submit(std::uint32_t count, SlotCallback on_start,
                         SlotCallback on_preempt, std::uint32_t initial) {
  on_start_ = std::move(on_start);
  on_preempt_ = std::move(on_preempt);
  slot_states_.assign(count, SlotState{});
  if (initial > count) initial = count;
  for (std::uint32_t slot = 0; slot < count; ++slot) {
    // Draw the match window for every slot — parked ones included — so the
    // rng stream does not depend on how many slots start now; an elastic
    // run and a fixed-pool run stay comparable draw-for-draw.
    const Tick window =
        spec_.match_window > 0
            ? static_cast<Tick>(rng_.uniform() *
                                static_cast<double>(spec_.match_window))
            : 0;
    if (slot < initial) {
      engine_.schedule_after(spec_.first_match_delay + window,
                             [this, slot] { start_slot(slot); });
    } else {
      parked_.push_back(slot);
    }
  }
}

std::uint32_t BatchSystem::start_slots(std::uint32_t n) {
  if (draining_) return 0;
  std::uint32_t started = 0;
  while (started < n && !parked_.empty()) {
    const std::uint32_t slot = parked_.front();
    parked_.erase(parked_.begin());
    const Tick window =
        spec_.match_window > 0
            ? static_cast<Tick>(rng_.uniform() *
                                static_cast<double>(spec_.match_window))
            : 0;
    engine_.schedule_after(spec_.first_match_delay + window,
                           [this, slot] { start_slot(slot); });
    ++started;
  }
  return started;
}

bool BatchSystem::release_slot(std::uint32_t slot) {
  if (draining_ || slot >= slot_states_.size()) return false;
  SlotState& state = slot_states_[slot];
  if (!state.running) return false;
  state.preemption_event.cancel();
  state.running = false;
  --active_;
  ++releases_;
  const std::uint32_t ended_incarnation = state.incarnation;
  state.incarnation += 1;
  if (on_preempt_) on_preempt_(slot, ended_incarnation);
  parked_.push_back(slot);
  return true;
}

void BatchSystem::drain() {
  draining_ = true;
  for (auto& state : slot_states_) {
    state.preemption_event.cancel();
  }
}

void BatchSystem::start_slot(std::uint32_t slot) {
  if (draining_) return;
  SlotState& state = slot_states_[slot];
  state.running = true;
  ++active_;
  arm_preemption(slot);
  if (on_start_) on_start_(slot, state.incarnation);
}

void BatchSystem::arm_preemption(std::uint32_t slot) {
  if (spec_.preemption_rate_per_hour <= 0) return;
  const double mean_lifetime_sec = 3600.0 / spec_.preemption_rate_per_hour;
  const Tick lifetime = util::seconds(rng_.exponential(mean_lifetime_sec));
  slot_states_[slot].preemption_event =
      engine_.schedule_after(lifetime, [this, slot] { preempt_slot(slot); });
}

void BatchSystem::register_stats(obs::StatsRegistry& registry,
                                 const std::string& prefix) const {
  registry.gauge(prefix + ".active_workers",
                 [this] { return static_cast<double>(active_); });
  registry.gauge(prefix + ".preemptions",
                 [this] { return static_cast<double>(preemptions_); });
  registry.gauge(prefix + ".slots",
                 [this] { return static_cast<double>(slot_states_.size()); });
}

void BatchSystem::force_preempt(std::uint32_t slot) {
  if (draining_ || slot >= slot_states_.size()) return;
  if (!slot_states_[slot].running) return;
  ++forced_evictions_;
  preempt_slot(slot);
}

void BatchSystem::preempt_slot(std::uint32_t slot) {
  if (draining_) return;
  SlotState& state = slot_states_[slot];
  if (!state.running) return;
  state.preemption_event.cancel();  // forced evictions race the armed timer
  state.running = false;
  --active_;
  ++preemptions_;
  const std::uint32_t ended_incarnation = state.incarnation;
  state.incarnation += 1;
  if (on_preempt_) on_preempt_(slot, ended_incarnation);
  if (spec_.resubmit_on_preempt) {
    const Tick delay = util::seconds(rng_.exponential(
        util::to_seconds(spec_.replacement_delay_mean)));
    engine_.schedule_after(delay, [this, slot] { start_slot(slot); });
  }
}

}  // namespace hepvine::batch
