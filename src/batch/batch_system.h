// Opportunistic batch system (HTCondor-like).
//
// Worker jobs submitted to the campus cluster in the paper (a) do not all
// start at once — they trickle in as the negotiator matches them — and
// (b) run on opportunistic slots that can be preempted at any time ("up to
// 1% of workers in each run", Section IV). Preemptions surface to the
// scheduler as worker failures; optionally a replacement job is matched
// after a delay, producing a new incarnation of the same slot.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/stats_registry.h"
#include "sim/engine.h"
#include "sim/rng.h"
#include "util/units.h"

namespace hepvine::batch {

using util::Tick;

struct BatchSpec {
  /// Worker jobs begin matching after this delay...
  Tick first_match_delay = 2 * util::kSec;
  /// ...and the full request is matched within this additional window
  /// (arrivals are spread uniformly across it).
  Tick match_window = 30 * util::kSec;
  /// Per-worker preemption rate (events per hour of wall time). The paper's
  /// "up to 1% per run" with ~1 h runs corresponds to ~0.01/h.
  double preemption_rate_per_hour = 0.01;
  /// Whether a preempted job is resubmitted and eventually re-matched.
  bool resubmit_on_preempt = true;
  /// Mean delay before a resubmitted job is matched again.
  Tick replacement_delay_mean = 60 * util::kSec;
};

class BatchSystem {
 public:
  /// `on_start(slot, incarnation)` fires when a worker job begins executing;
  /// `on_preempt(slot, incarnation)` fires when it is evicted.
  using SlotCallback = std::function<void(std::uint32_t slot,
                                          std::uint32_t incarnation)>;

  BatchSystem(sim::Engine& engine, BatchSpec spec, std::uint64_t seed);

  /// Submit `count` worker jobs. May be called once per run. When
  /// `initial` < count, only the first `initial` slots begin matching;
  /// the rest are parked for an elastic factory to start later
  /// (`start_slots`). The per-slot match-window draw happens for every
  /// slot regardless, so the rng stream — and every downstream component —
  /// is independent of the initial pool size.
  void submit(std::uint32_t count, SlotCallback on_start,
              SlotCallback on_preempt,
              std::uint32_t initial = 0xffffffffU);

  /// Start up to `n` parked slots (factory grow). Each draws a fresh match
  /// window. Returns how many actually started matching.
  std::uint32_t start_slots(std::uint32_t n);

  /// Voluntarily release a running slot (factory shrink). Cancels its
  /// preemption timer, fires `on_preempt` so the scheduler runs its normal
  /// disconnect path, and parks the slot for a later `start_slots` —
  /// counted in `releases()`, not `preemptions()`, and never resubmitted
  /// on its own. Returns false if the slot was not running.
  bool release_slot(std::uint32_t slot);

  /// Stop scheduling further preemptions/replacements (workflow finished).
  void drain();

  /// Evict a running slot immediately (the node's scratch disk overflowed,
  /// or a fault schedule crashed the worker). Follows the normal preemption
  /// path, including resubmission if configured, but is counted separately
  /// so crash-kills stay distinguishable from stochastic preemption.
  void force_preempt(std::uint32_t slot);

  [[nodiscard]] std::uint32_t slots() const {
    return static_cast<std::uint32_t>(slot_states_.size());
  }
  [[nodiscard]] std::uint32_t preemptions() const { return preemptions_; }
  /// Subset of `preemptions()` that were forced evictions (crashes).
  [[nodiscard]] std::uint32_t forced_evictions() const {
    return forced_evictions_;
  }
  [[nodiscard]] std::uint32_t active_workers() const { return active_; }
  /// Slots voluntarily released by the factory (not preemptions).
  [[nodiscard]] std::uint32_t releases() const { return releases_; }
  /// Slots currently parked and available to `start_slots`.
  [[nodiscard]] std::uint32_t parked() const {
    return static_cast<std::uint32_t>(parked_.size());
  }

  /// Register gauges (`<prefix>.active_workers`, `<prefix>.preemptions`,
  /// `<prefix>.slots`) into a per-run stats registry. The gauges read live
  /// state; the registry detaches them when the run finalizes.
  void register_stats(obs::StatsRegistry& registry,
                      const std::string& prefix = "batch") const;

 private:
  struct SlotState {
    std::uint32_t incarnation = 0;
    bool running = false;
    sim::Engine::EventHandle preemption_event;
  };

  void start_slot(std::uint32_t slot);
  void arm_preemption(std::uint32_t slot);
  void preempt_slot(std::uint32_t slot);

  sim::Engine& engine_;
  BatchSpec spec_;
  sim::Rng rng_;
  SlotCallback on_start_;
  SlotCallback on_preempt_;
  std::vector<SlotState> slot_states_;
  // Slots not yet (or no longer) submitted for matching, in release order.
  std::vector<std::uint32_t> parked_;
  std::uint32_t preemptions_ = 0;
  std::uint32_t forced_evictions_ = 0;
  std::uint32_t releases_ = 0;
  std::uint32_t active_ = 0;
  bool draining_ = false;
};

}  // namespace hepvine::batch
