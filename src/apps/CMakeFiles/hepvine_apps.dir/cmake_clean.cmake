file(REMOVE_RECURSE
  "CMakeFiles/hepvine_apps.dir/workloads.cpp.o"
  "CMakeFiles/hepvine_apps.dir/workloads.cpp.o.d"
  "libhepvine_apps.a"
  "libhepvine_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hepvine_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
