# Empty dependencies file for hepvine_apps.
# This may be replaced when dependencies are built.
