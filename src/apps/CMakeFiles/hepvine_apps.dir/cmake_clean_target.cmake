file(REMOVE_RECURSE
  "libhepvine_apps.a"
)
