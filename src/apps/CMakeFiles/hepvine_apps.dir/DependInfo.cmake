
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/workloads.cpp" "src/apps/CMakeFiles/hepvine_apps.dir/workloads.cpp.o" "gcc" "src/apps/CMakeFiles/hepvine_apps.dir/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/dag/CMakeFiles/hepvine_dag.dir/DependInfo.cmake"
  "/root/repo/src/data/CMakeFiles/hepvine_data.dir/DependInfo.cmake"
  "/root/repo/src/hep/CMakeFiles/hepvine_hep.dir/DependInfo.cmake"
  "/root/repo/src/sim/CMakeFiles/hepvine_sim.dir/DependInfo.cmake"
  "/root/repo/src/util/CMakeFiles/hepvine_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
