#include "apps/workloads.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <utility>

#include "dag/builders.h"
#include "data/dataset.h"
#include "hep/events.h"
#include "hep/histogram.h"
#include "hep/processors.h"
#include "sim/rng.h"
#include "util/hash.h"

namespace hepvine::apps {

namespace {

/// Skim selection used by DV3-Huge preprocessing: keep events with either
/// a b-tag candidate pair or significant MET.
hep::EventChunk skim_chunk(const hep::EventChunk& in) {
  hep::EventChunk out;
  out.seed = in.seed;
  out.jets.event_offsets.push_back(0);
  out.photons.event_offsets.push_back(0);
  for (std::size_t e = 0; e < in.events; ++e) {
    std::uint32_t btags = 0;
    for (std::uint32_t j = in.jets.begin_of(e); j < in.jets.end_of(e); ++j) {
      if (in.jets.quality[j] > 0.85f) ++btags;
    }
    if (btags < 2 && in.met_pt[e] < 60.0f) continue;
    out.met_pt.push_back(in.met_pt[e]);
    for (std::uint32_t j = in.jets.begin_of(e); j < in.jets.end_of(e); ++j) {
      out.jets.pt.push_back(in.jets.pt[j]);
      out.jets.eta.push_back(in.jets.eta[j]);
      out.jets.phi.push_back(in.jets.phi[j]);
      out.jets.mass.push_back(in.jets.mass[j]);
      out.jets.quality.push_back(in.jets.quality[j]);
    }
    for (std::uint32_t g = in.photons.begin_of(e); g < in.photons.end_of(e);
         ++g) {
      out.photons.pt.push_back(in.photons.pt[g]);
      out.photons.eta.push_back(in.photons.eta[g]);
      out.photons.phi.push_back(in.photons.phi[g]);
      out.photons.mass.push_back(in.photons.mass[g]);
      out.photons.quality.push_back(in.photons.quality[g]);
    }
    out.jets.event_offsets.push_back(
        static_cast<std::uint32_t>(out.jets.count()));
    out.photons.event_offsets.push_back(
        static_cast<std::uint32_t>(out.photons.count()));
    ++out.events;
  }
  return out;
}

/// Systematic-variation analysis: re-run the DV3 selection on a skim with a
/// variation-dependent jet-pT threshold and fill variation-tagged
/// histograms.
hep::HistogramSet variation_process(const hep::EventChunk& chunk,
                                    std::uint32_t variation) {
  using namespace hep::binning;
  hep::HistogramSet out;
  const std::string suffix = "_v" + std::to_string(variation);
  hep::Histogram1D& mass =
      out.get("dijet_mass" + suffix, kDijetBins, kDijetLo, kDijetHi);
  const float pt_cut = 25.0f + 2.0f * static_cast<float>(variation);
  for (std::size_t e = 0; e < chunk.events; ++e) {
    std::uint32_t selected[16];
    std::uint32_t nsel = 0;
    for (std::uint32_t j = chunk.jets.begin_of(e);
         j < chunk.jets.end_of(e) && nsel < 16; ++j) {
      if (chunk.jets.quality[j] > 0.85f && chunk.jets.pt[j] > pt_cut) {
        selected[nsel++] = j;
      }
    }
    for (std::uint32_t a = 0; a < nsel; ++a) {
      for (std::uint32_t b = a + 1; b < nsel; ++b) {
        mass.fill(hep::dijet_mass(
            chunk.jets.pt[selected[a]], chunk.jets.eta[selected[a]],
            chunk.jets.phi[selected[a]], chunk.jets.pt[selected[b]],
            chunk.jets.eta[selected[b]], chunk.jets.phi[selected[b]]));
      }
    }
  }
  return out;
}

double lognormal_cpu(sim::Rng& rng, double median, double sigma) {
  return median * std::exp(rng.normal(0.0, sigma));
}

}  // namespace

WorkloadSpec dv3_small() {
  WorkloadSpec spec;
  spec.name = "DV3-Small";
  spec.process_tasks = 320;
  spec.input_bytes = 25 * util::kGB;
  spec.process_output_bytes = 40 * util::kMB;
  return spec;
}

WorkloadSpec dv3_medium() {
  WorkloadSpec spec;
  spec.name = "DV3-Medium";
  spec.process_tasks = 2'500;
  spec.input_bytes = 200 * util::kGB;
  spec.process_output_bytes = 60 * util::kMB;
  return spec;
}

WorkloadSpec dv3_large() {
  WorkloadSpec spec;
  spec.name = "DV3-Large";
  spec.process_tasks = 15'000;
  spec.input_bytes = 1'200 * util::kGB;
  spec.process_output_bytes = 100 * util::kMB;
  return spec;
}

WorkloadSpec dv3_huge() {
  WorkloadSpec spec;
  spec.name = "DV3-Huge";
  spec.process_tasks = 10'000;  // skims: the 10k initially-runnable tasks
  spec.input_bytes = 1'200 * util::kGB;
  spec.process_cpu_median = 2.0;
  spec.process_output_bytes = 200 * util::kMB;  // skimmed events
  spec.variations = 16;
  spec.variation_cpu_median = 3.0;  // "more extensive computation"
  spec.variation_output_bytes = 20 * util::kMB;
  spec.reduce_arity = 16;
  spec.reduce_output_bytes = 20 * util::kMB;
  return spec;
}

WorkloadSpec rs_triphoton() {
  WorkloadSpec spec;
  spec.name = "RS-TriPhoton";
  spec.analysis = Analysis::kTriPhoton;
  spec.datasets = 20;
  spec.process_tasks = 4'000;
  spec.input_bytes = 500 * util::kGB;
  spec.process_cpu_median = 6.0;
  spec.process_cpu_sigma = 0.4;
  spec.process_output_bytes = 2'600 * util::kMB;  // large partials
  spec.process_memory = 12 * util::kGB;
  spec.reduce_cpu_fixed = 2.0;
  spec.reduce_cpu_per_input = 0.8;
  spec.reduce_output_bytes = 2'800 * util::kMB;
  spec.reduce_memory = 24 * util::kGB;
  return spec;
}

WorkloadSpec with_events(WorkloadSpec spec, std::uint64_t events_per_chunk) {
  spec.events_per_chunk = events_per_chunk;
  return spec;
}

dag::TaskGraph build_workload(const WorkloadSpec& spec, std::uint64_t seed) {
  if (spec.process_tasks == 0 || spec.datasets == 0) {
    throw std::invalid_argument("workload needs tasks and datasets");
  }
  dag::TaskGraph graph;
  sim::Rng cpu_rng(seed, "workload-cpu");

  const std::uint32_t per_dataset =
      std::max<std::uint32_t>(1, spec.process_tasks / spec.datasets);
  const std::uint64_t bytes_per_dataset = spec.input_bytes / spec.datasets;

  dag::ReduceSpec reduce;
  reduce.merge = hep::HistogramSet::merge_values;
  reduce.cpu_seconds_fixed = spec.reduce_cpu_fixed;
  reduce.cpu_seconds_per_input = spec.reduce_cpu_per_input;
  reduce.output_bytes_min = spec.reduce_output_bytes
                                ? spec.reduce_output_bytes
                                : spec.process_output_bytes;
  reduce.output_scale = 0.0;  // merging histograms does not grow them
  reduce.memory_bytes = spec.reduce_memory;

  std::vector<dag::TaskId> dataset_roots;
  dataset_roots.reserve(spec.datasets);

  for (std::uint32_t d = 0; d < spec.datasets; ++d) {
    const std::string ds_name = spec.name + "/ds" + std::to_string(d);
    const std::uint32_t nfiles = std::max<std::uint32_t>(
        1, per_dataset / std::max<std::uint32_t>(1, spec.chunks_per_file));
    const data::DatasetSpec dataset = data::make_uniform_dataset(
        ds_name, nfiles, bytes_per_dataset / nfiles, spec.chunks_per_file,
        spec.events_per_chunk);
    const auto chunks =
        data::register_dataset(dataset, graph.catalog(), seed + d * 1000);

    std::vector<dag::TaskId> partials;
    partials.reserve(chunks.size() * std::max<std::uint32_t>(
                                         1, spec.variations));
    for (const data::ChunkRef& chunk : chunks) {
      dag::TaskSpec process;
      process.category = spec.variations ? "preprocess" : "process";
      process.function = spec.analysis == Analysis::kDv3
                             ? "dv3_processor"
                             : "triphoton_processor";
      process.input_files = {chunk.file_id};
      process.cpu_seconds = lognormal_cpu(cpu_rng, spec.process_cpu_median,
                                          spec.process_cpu_sigma);
      process.output_bytes = spec.process_output_bytes;
      process.memory_bytes = spec.process_memory;

      if (spec.variations == 0) {
        // Plain map phase: chunk -> partial histograms.
        const std::uint64_t chunk_seed = chunk.seed;
        const std::uint64_t events = chunk.events;
        const Analysis analysis = spec.analysis;
        process.fn = [chunk_seed, events,
                      analysis](const std::vector<dag::ValuePtr>&) {
          const hep::EventChunk data = hep::generate_chunk(chunk_seed, events);
          auto out = std::make_shared<hep::HistogramSet>();
          *out = analysis == Analysis::kDv3 ? hep::dv3_process(data)
                                            : hep::triphoton_process(data);
          return out;
        };
        partials.push_back(graph.add_task(std::move(process)));
      } else {
        // DV3-Huge: skim once, then fan out systematic variations.
        const std::uint64_t chunk_seed = chunk.seed;
        const std::uint64_t events = chunk.events;
        process.fn = [chunk_seed,
                      events](const std::vector<dag::ValuePtr>&) {
          const hep::EventChunk data = hep::generate_chunk(chunk_seed, events);
          return std::make_shared<hep::EventChunkValue>(skim_chunk(data),
                                                        64 * util::kKiB);
        };
        const dag::TaskId skim = graph.add_task(std::move(process));
        for (std::uint32_t v = 0; v < spec.variations; ++v) {
          dag::TaskSpec var;
          var.category = "variation";
          var.function = "dv3_variation";
          var.deps = {skim};
          var.cpu_seconds = lognormal_cpu(cpu_rng, spec.variation_cpu_median,
                                          spec.process_cpu_sigma);
          var.output_bytes = spec.variation_output_bytes;
          var.memory_bytes = spec.process_memory;
          var.fn = [v](const std::vector<dag::ValuePtr>& inputs) {
            const auto* skim_value =
                dynamic_cast<const hep::EventChunkValue*>(inputs.at(0).get());
            if (skim_value == nullptr) {
              throw std::invalid_argument("variation expects a skim chunk");
            }
            auto out = std::make_shared<hep::HistogramSet>();
            *out = variation_process(skim_value->chunk(), v);
            return out;
          };
          partials.push_back(graph.add_task(std::move(var)));
        }
      }
    }

    // Per-dataset accumulation.
    dag::TaskId root;
    if (partials.size() == 1) {
      root = partials.front();
    } else if (spec.reduction == ReductionShape::kSingleNode) {
      root = dag::add_single_reduction(graph, partials, reduce);
    } else {
      root = dag::add_tree_reduction(graph, partials, spec.reduce_arity,
                                     reduce);
    }
    dataset_roots.push_back(root);
  }

  // Cross-dataset final merge (skipped for a single dataset).
  if (dataset_roots.size() > 1) {
    dag::ReduceSpec final_merge = reduce;
    final_merge.category = "final-merge";
    dag::add_tree_reduction(graph, dataset_roots,
                            std::max<std::size_t>(2, spec.reduce_arity),
                            final_merge);
  }
  return graph;
}

}  // namespace hepvine::apps
