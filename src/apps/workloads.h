// The paper's application workloads (Table II):
//
//   | Application  | Tasks  | Input data |
//   |--------------|--------|------------|
//   | DV3-Small    | ~0.4k  | 25 GB      |
//   | DV3-Medium   | ~2.9k  | 200 GB     |
//   | DV3-Large    | ~17k   | 1.2 TB     |
//   | DV3-Huge     | ~185k  | 1.2 TB     |
//   | RS-TriPhoton | ~4.6k  | 500 GB     |
//
// DV3 maps a processor over dataset chunks and accumulates histograms
// hierarchically. DV3-Huge reuses the same 1.2 TB but performs far more
// computation: each chunk is skimmed once (10k initially-runnable tasks),
// then 16 systematic-variation analyses consume every skim before a wide
// accumulation. RS-TriPhoton processes 20 datasets whose per-dataset
// partial results are large — the workload whose reduction topology drives
// the paper's Fig 11.
//
// Every task's closure does the real physics (synthetic events, real
// selections, real histogram fills), while cpu_seconds / output_bytes model
// the production-scale costs. `events_per_chunk` controls how much real
// computation backs each task; benches keep it modest for wall-clock speed.
#pragma once

#include <cstdint>
#include <string>

#include "dag/task_graph.h"

namespace hepvine::apps {

enum class Analysis : std::uint8_t { kDv3, kTriPhoton };

enum class ReductionShape : std::uint8_t {
  kTree,        // hierarchical (the paper's fix)
  kSingleNode,  // one reduction task per dataset (the original topology)
};

struct WorkloadSpec {
  std::string name;
  Analysis analysis = Analysis::kDv3;
  std::uint32_t datasets = 1;
  std::uint32_t process_tasks = 1000;  // across all datasets
  std::uint64_t input_bytes = 100 * util::kGB;
  std::uint32_t chunks_per_file = 5;
  std::uint64_t events_per_chunk = 1000;  // real events computed per chunk

  double process_cpu_median = 3.5;  // seconds at unit speed
  double process_cpu_sigma = 0.5;   // lognormal sigma
  std::uint64_t process_output_bytes = 100 * util::kMB;
  std::uint64_t process_memory = 2 * util::kGB;

  /// DV3-Huge: systematic variations applied to each skimmed chunk
  /// (0 = plain map/accumulate workflow).
  std::uint32_t variations = 0;
  double variation_cpu_median = 1.2;
  std::uint64_t variation_output_bytes = 20 * util::kMB;

  ReductionShape reduction = ReductionShape::kTree;
  std::size_t reduce_arity = 8;
  double reduce_cpu_fixed = 0.4;
  double reduce_cpu_per_input = 0.05;
  /// Modeled size of a merged partial (histogram merging compresses).
  std::uint64_t reduce_output_bytes = 0;  // 0 -> same as process output
  std::uint64_t reduce_memory = 4 * util::kGB;
};

/// Table II presets.
[[nodiscard]] WorkloadSpec dv3_small();
[[nodiscard]] WorkloadSpec dv3_medium();
[[nodiscard]] WorkloadSpec dv3_large();
[[nodiscard]] WorkloadSpec dv3_huge();
[[nodiscard]] WorkloadSpec rs_triphoton();

/// Scale the amount of real per-task computation (events) without touching
/// the modeled costs — benches use small values for wall-clock speed.
[[nodiscard]] WorkloadSpec with_events(WorkloadSpec spec,
                                       std::uint64_t events_per_chunk);

/// Build the executable task graph for a workload. Deterministic in
/// (spec, seed): identical graphs, chunk seeds, and modeled costs.
[[nodiscard]] dag::TaskGraph build_workload(const WorkloadSpec& spec,
                                            std::uint64_t seed);

}  // namespace hepvine::apps
